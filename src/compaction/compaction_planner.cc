#include "compaction/compaction_planner.h"

#include <algorithm>
#include <set>

namespace talus {
namespace compaction {

Status PlanCompaction(const Version& base, const CompactionRequest& req,
                      const PlannerContext& ctx, CompactionPlan* plan) {
  *plan = CompactionPlan();
  plan->output_level = req.output_level;
  plan->placement = req.placement;
  plan->reason = req.reason;
  plan->bits_per_key = ctx.bits_per_key;
  plan->smallest_snapshot = ctx.smallest_snapshot;

  // ---- Resolve input files. ----
  for (const auto& in : req.inputs) {
    if (in.level < 0 || in.level >= static_cast<int>(base.levels.size())) {
      return Status::InvalidArgument("compaction input level out of range");
    }
    const SortedRun* run = base.levels[in.level].FindRun(in.run_id);
    if (run == nullptr) {
      return Status::InvalidArgument("compaction input run not found");
    }
    CompactionPlan::Input ri;
    ri.level = in.level;
    ri.run_id = in.run_id;
    ri.whole_run = in.file_numbers.empty();
    if (ri.whole_run) {
      ri.files = run->files;
    } else {
      std::set<uint64_t> wanted(in.file_numbers.begin(),
                                in.file_numbers.end());
      for (const auto& f : run->files) {
        if (wanted.count(f->number)) ri.files.push_back(f);
      }
      if (ri.files.size() != wanted.size()) {
        return Status::InvalidArgument("compaction input file not found");
      }
    }
    for (const auto& f : ri.files) {
      Slice lo = f->smallest.user_key();
      Slice hi = f->largest.user_key();
      if (!plan->have_range) {
        plan->min_user = lo.ToString();
        plan->max_user = hi.ToString();
        plan->have_range = true;
      } else {
        if (lo.compare(Slice(plan->min_user)) < 0) {
          plan->min_user = lo.ToString();
        }
        if (hi.compare(Slice(plan->max_user)) > 0) {
          plan->max_user = hi.ToString();
        }
      }
    }
    plan->inputs.push_back(std::move(ri));
  }
  if (!plan->have_range) return Status::OK();  // Empty plan: nothing to do.

  // ---- Resolve the output target (leveling-style merge). ----
  const LevelState* out_level =
      req.output_level < static_cast<int>(base.levels.size())
          ? &base.levels[req.output_level]
          : nullptr;
  const SortedRun* target_run = nullptr;
  if (req.output_run_id.has_value()) {
    target_run =
        out_level != nullptr ? out_level->FindRun(*req.output_run_id) : nullptr;
    if (target_run == nullptr) {
      return Status::InvalidArgument("compaction output run not found");
    }
    plan->target_run_id = *req.output_run_id;
    for (size_t idx : target_run->OverlappingFiles(Slice(plan->min_user),
                                                   Slice(plan->max_user))) {
      plan->target_overlaps.push_back(target_run->files[idx]);
    }
  }
  if (out_level != nullptr) {
    for (const auto& run : out_level->runs) {
      plan->output_level_run_ids.push_back(run.run_id);
    }
  }

  // ---- Tombstone GC admissibility. ----
  // Safe only when no older data for these keys can exist below the output
  // position: nothing in deeper levels, and nothing in older runs of the
  // output level beyond the target itself (inputs from the output level are
  // consumed, so they do not count).
  bool older_data_below = false;
  for (size_t l = req.output_level;
       l < base.levels.size() && !older_data_below; l++) {
    for (const auto& run : base.levels[l].runs) {
      if (run.files.empty()) continue;
      if (l == static_cast<size_t>(req.output_level)) {
        if (target_run != nullptr && run.run_id == target_run->run_id) {
          continue;  // The target itself is merged, not "below".
        }
        bool is_whole_input = false;
        for (const auto& ri : plan->inputs) {
          if (ri.level == req.output_level && ri.run_id == run.run_id &&
              ri.whole_run) {
            is_whole_input = true;
            break;
          }
        }
        if (is_whole_input) continue;
        if (target_run == nullptr) {
          older_data_below = true;  // Fresh front run: everything else older.
          break;
        }
        // Runs positioned after (older than) the target block GC.
        size_t target_pos = 0, run_pos = 0;
        for (size_t i = 0; i < out_level->runs.size(); i++) {
          if (out_level->runs[i].run_id == target_run->run_id) target_pos = i;
          if (out_level->runs[i].run_id == run.run_id) run_pos = i;
        }
        if (run_pos > target_pos) {
          older_data_below = true;
          break;
        }
      } else {
        older_data_below = true;
        break;
      }
    }
  }
  plan->drop_tombstones = !older_data_below;

  PickSubcompactionBoundaries(req, ctx.max_subcompactions, plan);
  return Status::OK();
}

void PickSubcompactionBoundaries(const CompactionRequest& req,
                                 int max_subcompactions,
                                 CompactionPlan* plan) {
  plan->boundaries.clear();
  if (max_subcompactions <= 1 || !plan->have_range) return;

  // Every merge input file, sorted by smallest key, with prefix byte sums.
  std::vector<FileMetaPtr> files;
  for (const auto& ri : plan->inputs) {
    for (const auto& f : ri.files) files.push_back(f);
  }
  for (const auto& f : plan->target_overlaps) files.push_back(f);
  if (files.size() < 2) return;  // One file cannot be split further.
  std::sort(files.begin(), files.end(),
            [](const FileMetaPtr& a, const FileMetaPtr& b) {
              return a->smallest.user_key().compare(b->smallest.user_key()) <
                     0;
            });
  uint64_t total_bytes = 0;
  for (const auto& f : files) total_bytes += f->file_size;
  if (total_bytes == 0) return;

  // Candidate split keys: file smallest keys strictly inside the range,
  // plus the request's planner-visible hints. Splitting only at user-key
  // boundaries keeps all versions of a key in one subcompaction.
  std::set<std::string> candidates;
  for (const auto& f : files) {
    std::string k = f->smallest.user_key().ToString();
    if (k > plan->min_user && k <= plan->max_user) candidates.insert(k);
  }
  for (const auto& hint : req.boundary_hints) {
    if (hint > plan->min_user && hint <= plan->max_user) {
      candidates.insert(hint);
    }
  }
  if (candidates.empty()) return;

  // Byte position of each candidate: bytes of files that start before it.
  // Walking the sorted files once gives an increasing cumulative map.
  std::vector<std::pair<std::string, uint64_t>> positioned;
  {
    size_t fi = 0;
    uint64_t cum = 0;
    for (const auto& cand : candidates) {  // std::set: ascending.
      while (fi < files.size() &&
             files[fi]->smallest.user_key().compare(Slice(cand)) < 0) {
        cum += files[fi]->file_size;
        fi++;
      }
      positioned.emplace_back(cand, cum);
    }
  }

  // Pick the candidate nearest (at or after) each even byte cut.
  const int ranges = max_subcompactions;
  size_t ci = 0;
  for (int i = 1; i < ranges && ci < positioned.size(); i++) {
    const uint64_t cut =
        total_bytes / static_cast<uint64_t>(ranges) * static_cast<uint64_t>(i);
    while (ci < positioned.size() && positioned[ci].second < cut) ci++;
    if (ci >= positioned.size()) break;
    plan->boundaries.push_back(positioned[ci].first);
    ci++;
  }
}

}  // namespace compaction
}  // namespace talus
