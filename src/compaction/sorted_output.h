// WriteSortedOutput: streams a positioned internal-key iterator into a
// sequence of size-bounded SST files, dropping snapshot-shadowed versions
// and (when admissible) tombstones. The single sorted-output pass behind
// memtable flushes and every compaction subcompaction.
//
// Thread-safe when given an exclusive input iterator: file numbers come from
// the shared atomic counter and nothing else is engine state, so background
// flushes and parallel subcompactions call it with the DB mutex released.
#ifndef TALUS_COMPACTION_SORTED_OUTPUT_H_
#define TALUS_COMPACTION_SORTED_OUTPUT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "env/env.h"
#include "filter/bloom.h"
#include "lsm/dbformat.h"
#include "lsm/version.h"
#include "table/iterator.h"
#include "util/status.h"

namespace talus {
namespace compaction {

/// Parameters for one sorted-output pass, captured under the DB mutex so
/// the pass itself can run with or without it.
struct OutputSpec {
  int output_level = 0;
  bool drop_tombstones = false;
  double bits_per_key = 0;
  SequenceNumber smallest_snapshot = 0;
};

/// Where and how output files are built. Immutable for the DB's lifetime.
struct OutputShape {
  Env* env = nullptr;
  std::string path;
  size_t block_size = 4096;
  int restart_interval = 16;
  FilterVariant filter_variant = FilterVariant::kLegacy;
  uint64_t target_file_size = 1 << 20;
  /// Shared file-number allocator (DB::next_file_number_).
  std::atomic<uint64_t>* next_file_number = nullptr;
};

/// Drains `input` (already positioned at its first entry) into SSTs.
/// Appends the produced metadata to `outputs` and adds the input key+value
/// bytes consumed to `*bytes_read`.
Status WriteSortedOutput(const OutputShape& shape, Iterator* input,
                         const OutputSpec& spec, uint64_t* bytes_read,
                         std::vector<FileMetaPtr>* outputs);

}  // namespace compaction
}  // namespace talus

#endif  // TALUS_COMPACTION_SORTED_OUTPUT_H_
