#include "compaction/compaction_install.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace talus {
namespace compaction {

bool PlanStillValid(const CompactionPlan& plan, const Version& current) {
  if (plan.empty()) return true;

  for (const auto& ri : plan.inputs) {
    if (ri.level < 0 || ri.level >= static_cast<int>(current.levels.size())) {
      return false;
    }
    const SortedRun* run = current.levels[ri.level].FindRun(ri.run_id);
    if (run == nullptr) return false;
    if (ri.whole_run) {
      // The whole run is consumed: its file set must be exactly what the
      // plan captured, in the same order.
      if (run->files.size() != ri.files.size()) return false;
      for (size_t i = 0; i < run->files.size(); i++) {
        if (run->files[i]->number != ri.files[i]->number) return false;
      }
    } else {
      std::set<uint64_t> present;
      for (const auto& f : run->files) present.insert(f->number);
      for (const auto& f : ri.files) {
        if (!present.count(f->number)) return false;
      }
    }
  }

  if (plan.target_run_id.has_value()) {
    if (plan.output_level >= static_cast<int>(current.levels.size())) {
      return false;
    }
    const SortedRun* target =
        current.levels[plan.output_level].FindRun(*plan.target_run_id);
    if (target == nullptr) return false;
    std::vector<size_t> overlap_idx = target->OverlappingFiles(
        Slice(plan.min_user), Slice(plan.max_user));
    if (overlap_idx.size() != plan.target_overlaps.size()) return false;
    for (size_t i = 0; i < overlap_idx.size(); i++) {
      if (target->files[overlap_idx[i]]->number !=
          plan.target_overlaps[i]->number) {
        return false;
      }
    }
  } else if (plan.placement == CompactionRequest::Placement::kFront &&
             plan.output_level == 0) {
    // Level 0 is the only level a concurrent flush reshapes; a front insert
    // is ordering-correct only if the run sequence is unchanged.
    if (current.levels.empty()) return false;
    const auto& runs = current.levels[0].runs;
    if (runs.size() != plan.output_level_run_ids.size()) return false;
    for (size_t i = 0; i < runs.size(); i++) {
      if (runs[i].run_id != plan.output_level_run_ids[i]) return false;
    }
  }
  return true;
}

void ApplyCompactionPlan(const CompactionPlan& plan,
                         std::vector<FileMetaPtr> outputs,
                         uint64_t* next_run_id, Version* next,
                         std::vector<FileMetaPtr>* obsolete) {
  next->EnsureLevels(static_cast<size_t>(plan.output_level) + 1);
  LevelState& out_level = next->levels[plan.output_level];

  for (const auto& ri : plan.inputs) {
    for (const auto& f : ri.files) obsolete->push_back(f);
  }
  for (const auto& f : plan.target_overlaps) obsolete->push_back(f);

  // For kReplaceInputs, note the position of the youngest consumed run in
  // the output level before mutation.
  size_t replace_position = out_level.runs.size();
  if (plan.placement == CompactionRequest::Placement::kReplaceInputs) {
    for (const auto& ri : plan.inputs) {
      if (ri.level != plan.output_level) continue;
      for (size_t i = 0; i < out_level.runs.size(); i++) {
        if (out_level.runs[i].run_id == ri.run_id) {
          replace_position = std::min(replace_position, i);
        }
      }
    }
    if (replace_position == out_level.runs.size()) replace_position = 0;
  }

  for (const auto& ri : plan.inputs) {
    LevelState& level = next->levels[ri.level];
    SortedRun* run = level.FindRun(ri.run_id);
    assert(run != nullptr);
    if (ri.whole_run) {
      run->files.clear();
    } else {
      std::set<uint64_t> consumed;
      for (const auto& f : ri.files) consumed.insert(f->number);
      auto& files = run->files;
      files.erase(std::remove_if(files.begin(), files.end(),
                                 [&](const FileMetaPtr& f) {
                                   return consumed.count(f->number) > 0;
                                 }),
                  files.end());
    }
  }

  InternalKeyComparator cmp;
  if (plan.target_run_id.has_value()) {
    // Splice outputs into the target run where the overlaps were removed.
    SortedRun* target_run = out_level.FindRun(*plan.target_run_id);
    assert(target_run != nullptr);
    std::set<uint64_t> consumed;
    for (const auto& f : plan.target_overlaps) consumed.insert(f->number);
    auto& files = target_run->files;
    files.erase(std::remove_if(files.begin(), files.end(),
                               [&](const FileMetaPtr& f) {
                                 return consumed.count(f->number) > 0;
                               }),
                files.end());
    for (auto& f : outputs) files.push_back(std::move(f));
    std::sort(files.begin(), files.end(),
              [&cmp](const FileMetaPtr& a, const FileMetaPtr& b) {
                return cmp.Compare(a->smallest.Encode(),
                                   b->smallest.Encode()) < 0;
              });
  } else if (!outputs.empty()) {
    SortedRun run;
    run.run_id = (*next_run_id)++;
    run.files = std::move(outputs);
    if (plan.placement == CompactionRequest::Placement::kReplaceInputs) {
      replace_position = std::min(replace_position, out_level.runs.size());
      out_level.runs.insert(out_level.runs.begin() + replace_position,
                            std::move(run));
    } else {
      out_level.runs.insert(out_level.runs.begin(), std::move(run));
    }
  }

  // Drop now-empty runs everywhere.
  for (auto& level : next->levels) {
    auto& runs = level.runs;
    runs.erase(std::remove_if(
                   runs.begin(), runs.end(),
                   [](const SortedRun& r) { return r.files.empty(); }),
               runs.end());
  }
}

}  // namespace compaction
}  // namespace talus
