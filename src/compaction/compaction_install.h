// Install stage of the compaction pipeline (DESIGN.md §2.8). Runs under the
// DB mutex after the off-mutex merge: first validate that the plan's inputs
// still describe the current version (a concurrent flush may have reshaped
// level 0 while the merge ran), then splice the merge outputs into a
// successor Version. Both are pure version-shape functions, unit-testable
// without an engine.
#ifndef TALUS_COMPACTION_COMPACTION_INSTALL_H_
#define TALUS_COMPACTION_COMPACTION_INSTALL_H_

#include <cstdint>
#include <vector>

#include "compaction/compaction_plan.h"
#include "lsm/version.h"

namespace talus {
namespace compaction {

/// The conflict rule: a plan may install iff, in `current`,
///  * every input run still exists and still contains every planned file —
///    and, for whole-run inputs, no files beyond the planned ones (a
///    leveling flush rewrites a run's file set wholesale, so any reshape of
///    an input run is visible here);
///  * the target run (if any) still exists and its files overlapping the
///    plan's key range are exactly the planned target_overlaps (no new
///    overlap flushed in, none consumed by someone else);
///  * for front placement into level 0 with no target, the level's run
///    ordering is unchanged (a concurrent flush prepending a run would make
///    a front insert misorder newest-first data).
/// Returns false on any mismatch: the caller deletes the merge outputs and
/// retries from the plan stage against the fresh version.
bool PlanStillValid(const CompactionPlan& plan, const Version& current);

/// Splices `outputs` into `next` (a copy of the version PlanStillValid
/// approved) per the plan: consumes input files, replaces target overlaps or
/// creates a new run (allocating *next_run_id), drops now-empty runs, and
/// appends every consumed file to `obsolete` for deferred GC.
void ApplyCompactionPlan(const CompactionPlan& plan,
                         std::vector<FileMetaPtr> outputs,
                         uint64_t* next_run_id, Version* next,
                         std::vector<FileMetaPtr>* obsolete);

}  // namespace compaction
}  // namespace talus

#endif  // TALUS_COMPACTION_COMPACTION_INSTALL_H_
