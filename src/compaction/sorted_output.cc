#include "compaction/sorted_output.h"

#include <memory>

#include "lsm/filename.h"
#include "table/sst_builder.h"

namespace talus {
namespace compaction {

Status WriteSortedOutput(const OutputShape& shape, Iterator* input,
                         const OutputSpec& spec, uint64_t* bytes_read,
                         std::vector<FileMetaPtr>* outputs) {
  // Compaction/flush merges stream their inputs: charge sequential rates.
  IoStats::SequentialScope seq_scope(shape.env->io_stats());
  SstBuilderOptions bopts;
  bopts.block_size = shape.block_size;
  bopts.restart_interval = shape.restart_interval;
  bopts.bits_per_key = spec.bits_per_key;
  bopts.filter_variant = shape.filter_variant;

  std::unique_ptr<SstBuilder> builder;
  uint64_t file_number = 0;
  std::string last_user_key;
  bool has_last = false;
  // Newest-to-oldest sequence of the previously kept/seen version of the
  // current user key; versions at or below the smallest live snapshot that
  // are shadowed by a newer such version are unreachable from every read
  // view and can be dropped (LevelDB's retention rule).
  SequenceNumber last_sequence_for_key = kMaxSequenceNumber;
  const SequenceNumber smallest_snapshot = spec.smallest_snapshot;
  uint64_t read_accum = 0;
  uint64_t payload_accum = 0;
  uint64_t oldest_seq_accum = kMaxSequenceNumber;

  auto finish_file = [&]() -> Status {
    if (builder == nullptr) return Status::OK();
    Status fs = builder->Finish();
    if (!fs.ok()) return fs;
    auto meta = std::make_shared<FileMeta>();
    meta->number = file_number;
    meta->file_size = builder->FileSize();
    meta->num_entries = builder->NumEntries();
    meta->payload_bytes = payload_accum;
    meta->smallest = builder->smallest();
    meta->largest = builder->largest();
    meta->oldest_seq = oldest_seq_accum;
    outputs->push_back(std::move(meta));
    builder.reset();
    payload_accum = 0;
    oldest_seq_accum = kMaxSequenceNumber;
    return Status::OK();
  };

  for (; input->Valid(); input->Next()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(input->key(), &parsed)) {
      return Status::Corruption("bad internal key during compaction");
    }
    read_accum += input->key().size() + input->value().size();

    if (!has_last || parsed.user_key != Slice(last_user_key)) {
      last_user_key.assign(parsed.user_key.data(), parsed.user_key.size());
      has_last = true;
      last_sequence_for_key = kMaxSequenceNumber;
    }
    bool drop = false;
    if (last_sequence_for_key <= smallest_snapshot) {
      // A newer version of this key is already visible at the oldest read
      // view: this one is unreachable.
      drop = true;
    } else if (parsed.type == kTypeDeletion &&
               parsed.sequence <= smallest_snapshot &&
               spec.drop_tombstones) {
      drop = true;
    }
    last_sequence_for_key = parsed.sequence;
    if (drop) continue;

    // Cut the output file at the size target, but never between versions of
    // the same user key: files within a run must stay user-key disjoint
    // (point lookups probe exactly one file per run).
    if (builder != nullptr &&
        builder->FileSize() >= shape.target_file_size &&
        builder->NumEntries() > 0 &&
        ExtractUserKey(builder->largest().Encode()) != parsed.user_key) {
      Status fs = finish_file();
      if (!fs.ok()) return fs;
    }

    if (builder == nullptr) {
      file_number = shape.next_file_number->fetch_add(1);
      std::unique_ptr<WritableFile> file;
      Status fs = shape.env->NewWritableFile(
          SstFileName(shape.path, file_number), &file);
      if (!fs.ok()) return fs;
      builder = std::make_unique<SstBuilder>(bopts, std::move(file));
    }
    builder->Add(input->key(), input->value());
    payload_accum += parsed.user_key.size() + input->value().size();
    if (parsed.sequence < oldest_seq_accum) {
      oldest_seq_accum = parsed.sequence;
    }
  }
  Status fs = finish_file();
  if (!fs.ok()) return fs;
  *bytes_read = read_accum;
  return input->status();
}

}  // namespace compaction
}  // namespace talus
