#include "compaction/compaction_executor.h"

#include <cassert>
#include <condition_variable>

#include "table/merging_iterator.h"
#include "table/run_iterator.h"

namespace talus {
namespace compaction {

namespace {

// Forward-only clip of a child iterator to the user-key range [begin, end).
// Boundaries are whole user keys, so every version of a key stays on one
// side of a cut and the sorted-output shadow/tombstone logic remains local
// to a subcompaction.
class ClippingIterator final : public Iterator {
 public:
  ClippingIterator(std::unique_ptr<Iterator> base, bool has_begin,
                   std::string begin, bool has_end, std::string end)
      : base_(std::move(base)),
        has_begin_(has_begin),
        has_end_(has_end),
        end_(std::move(end)) {
    if (has_begin_) {
      // Seek target covering every version of `begin`.
      AppendInternalKey(&begin_target_, Slice(begin), kMaxSequenceNumber,
                        kValueTypeForSeek);
    }
  }

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    if (has_begin_) {
      base_->Seek(Slice(begin_target_));
    } else {
      base_->SeekToFirst();
    }
    Clamp();
  }

  void Seek(const Slice& target) override {
    if (has_begin_ &&
        ExtractUserKey(target).compare(ExtractUserKey(Slice(begin_target_))) <
            0) {
      base_->Seek(Slice(begin_target_));
    } else {
      base_->Seek(target);
    }
    Clamp();
  }

  void Next() override {
    assert(valid_);
    base_->Next();
    Clamp();
  }

  // The merge stage is strictly forward.
  void SeekToLast() override { valid_ = false; }
  void Prev() override { assert(false); }

  Slice key() const override { return base_->key(); }
  Slice value() const override { return base_->value(); }
  Status status() const override { return base_->status(); }

 private:
  void Clamp() {
    valid_ = base_->Valid() &&
             (!has_end_ || ExtractUserKey(base_->key()).compare(Slice(end_)) <
                               0);
  }

  std::unique_ptr<Iterator> base_;
  bool has_begin_ = false, has_end_ = false;
  std::string begin_target_, end_;
  bool valid_ = false;
};

// True when file may hold user keys in [begin, end).
bool FileOverlapsRange(const FileMeta& f, bool has_begin, const Slice& begin,
                       bool has_end, const Slice& end) {
  if (has_begin && f.largest.user_key().compare(begin) < 0) return false;
  if (has_end && f.smallest.user_key().compare(end) >= 0) return false;
  return true;
}

}  // namespace

CompactionExecutor::CompactionExecutor(OutputShape shape,
                                       read::TableCache* table_cache)
    : shape_(std::move(shape)), table_cache_(table_cache) {}

Status CompactionExecutor::Run(const CompactionPlan& plan,
                               const ExtraInputFactory& extra,
                               Result* result) {
  *result = Result();
  if (plan.empty()) return Status::OK();

  // Materialize the key ranges: N boundaries → N+1 subcompactions. State
  // lives behind a shared_ptr so a helper task drained after a pool
  // shutdown finds closed state instead of a dead stack frame.
  struct FanoutState {
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<size_t> next{0};
    size_t active = 0;
    bool closed = false;
    std::vector<Subcompaction> subs;
  };
  auto state = std::make_shared<FanoutState>();
  state->subs.resize(plan.boundaries.size() + 1);
  for (size_t i = 0; i < state->subs.size(); i++) {
    Subcompaction& sub = state->subs[i];
    if (i > 0) {
      sub.has_begin = true;
      sub.begin = plan.boundaries[i - 1];
    }
    if (i < plan.boundaries.size()) {
      sub.has_end = true;
      sub.end = plan.boundaries[i];
    }
  }
  const size_t n = state->subs.size();
  result->fanout = n;
  subs_scheduled_.fetch_add(n, std::memory_order_relaxed);

  auto drain = [this, state, &plan, &extra] {
    for (size_t i = state->next.fetch_add(1); i < state->subs.size();
         i = state->next.fetch_add(1)) {
      RunSubcompaction(plan, extra, &state->subs[i]);
    }
  };

  if (n > 1 && pool_ != nullptr) {
    // Fan out: helpers drain the same range queue as the coordinator, so
    // the coordinator alone guarantees completion — a helper that never
    // gets a worker (tiny pool) finds the queue empty and exits. Helpers
    // pass a gate before touching the plan: once the coordinator closes the
    // state, a late-dispatched task returns immediately rather than
    // touching a plan that no longer exists.
    const size_t helpers = std::min(n - 1, pool_->num_threads());
    for (size_t h = 0; h < helpers; h++) {
      pool_->Submit([state, drain] {
        {
          std::lock_guard<std::mutex> lock(state->mu);
          if (state->closed) return;
          state->active++;
        }
        drain();
        {
          std::lock_guard<std::mutex> lock(state->mu);
          state->active--;
        }
        state->cv.notify_all();
      });
    }
    drain();
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&state] { return state->active == 0; });
    state->closed = true;
  } else {
    drain();
    state->closed = true;
  }

  // Concatenate in range order: ranges are key-disjoint and ascending, so
  // the concatenation is globally sorted. Outputs are returned even when a
  // range failed, so the caller can delete the orphans.
  Status status;
  for (auto& sub : state->subs) {
    for (auto& f : sub.outputs) {
      result->bytes_written += f->file_size;
      result->outputs.push_back(std::move(f));
    }
    result->bytes_read += sub.bytes_read;
    if (status.ok() && !sub.status.ok()) status = sub.status;
  }
  if (extra) {
    flush_merges_.fetch_add(1, std::memory_order_relaxed);
  } else {
    compactions_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(fanout_mu_);
    fanout_hist_.Add(static_cast<double>(n));
  }
  return status;
}

void CompactionExecutor::RunSubcompaction(const CompactionPlan& plan,
                                          const ExtraInputFactory& extra,
                                          Subcompaction* sub) {
  subs_active_.fetch_add(1, std::memory_order_relaxed);

  const Slice begin(sub->begin), end(sub->end);
  auto open = [this](uint64_t n) { return table_cache_->GetReader(n); };
  auto clip = [&](std::unique_ptr<Iterator> base) {
    if (!sub->has_begin && !sub->has_end) return base;
    return std::unique_ptr<Iterator>(new ClippingIterator(
        std::move(base), sub->has_begin, sub->begin, sub->has_end, sub->end));
  };

  // Children newest-first mirrors the pre-pipeline merge order: the extra
  // input (flush memtable), then the request's inputs, then the target
  // overlaps.
  std::vector<std::unique_ptr<Iterator>> children;
  if (extra) children.push_back(clip(extra()));
  auto add_run = [&](const std::vector<FileMetaPtr>& files) {
    std::vector<FileMetaPtr> in_range;
    for (const auto& f : files) {
      if (FileOverlapsRange(*f, sub->has_begin, begin, sub->has_end, end)) {
        in_range.push_back(f);
      }
    }
    if (!in_range.empty()) {
      children.push_back(
          clip(std::make_unique<RunIterator>(std::move(in_range), open)));
    }
  };
  for (const auto& ri : plan.inputs) add_run(ri.files);
  add_run(plan.target_overlaps);

  if (!children.empty()) {
    auto merged =
        NewMergingIterator(InternalKeyComparator(), std::move(children));
    merged->SeekToFirst();
    OutputSpec spec;
    spec.output_level = plan.output_level;
    spec.drop_tombstones = plan.drop_tombstones;
    spec.bits_per_key = plan.bits_per_key;
    spec.smallest_snapshot = plan.smallest_snapshot;
    sub->status = WriteSortedOutput(shape_, merged.get(), spec,
                                    &sub->bytes_read, &sub->outputs);
  }

  subs_active_.fetch_sub(1, std::memory_order_relaxed);
  subs_completed_.fetch_add(1, std::memory_order_relaxed);
}

metrics::SubcompactionStats CompactionExecutor::GetStats() const {
  metrics::SubcompactionStats stats;
  stats.scheduled = subs_scheduled_.load(std::memory_order_relaxed);
  stats.completed = subs_completed_.load(std::memory_order_relaxed);
  stats.active = subs_active_.load(std::memory_order_relaxed);
  stats.compactions = compactions_.load(std::memory_order_relaxed);
  stats.flush_merges = flush_merges_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(fanout_mu_);
    if (fanout_hist_.Count() > 0) {
      stats.fanout_avg = fanout_hist_.Average();
      stats.fanout_p50 = fanout_hist_.Median();
      stats.fanout_max = fanout_hist_.Max();
    }
  }
  return stats;
}

}  // namespace compaction
}  // namespace talus
