// Plan stage of the compaction pipeline (DESIGN.md §2.8): resolves a
// policy's CompactionRequest against a base Version into an immutable
// CompactionPlan. Pure function of (version, request, context) — no engine
// state — so it is unit-testable and must be called with the version
// guaranteed stable (the DB calls it under its mutex).
#ifndef TALUS_COMPACTION_COMPACTION_PLANNER_H_
#define TALUS_COMPACTION_COMPACTION_PLANNER_H_

#include "compaction/compaction_plan.h"
#include "lsm/version.h"
#include "policy/growth_policy.h"
#include "util/status.h"

namespace talus {
namespace compaction {

struct PlannerContext {
  /// Upper bound on key-range subcompactions for the merge stage
  /// (DbOptions::max_subcompactions). 1 disables splitting.
  int max_subcompactions = 1;
  /// Output filter budget for the plan's output level.
  double bits_per_key = 0;
  /// Smallest sequence any live snapshot can observe; versions shadowed at
  /// this sequence are unreachable and may be dropped by the merge.
  SequenceNumber smallest_snapshot = 0;
};

/// Resolves `req` against `base` into `plan`. Returns InvalidArgument when
/// the request names levels/runs/files the version does not contain. A
/// request whose inputs hold no files yields an empty plan (plan->empty()),
/// which callers treat as "nothing to do".
///
/// Tombstone-GC admissibility (plan->drop_tombstones) is decided here, under
/// the mutex, and stays valid across an off-mutex merge: a concurrent flush
/// only adds *newer* data above the output position, never older data below
/// it, so an admissible drop can never become unsafe (DESIGN.md §2.8).
Status PlanCompaction(const Version& base, const CompactionRequest& req,
                      const PlannerContext& ctx, CompactionPlan* plan);

/// Splits the plan's key space into at most `max_subcompactions` ranges at
/// input-file boundaries (plus any boundary_hints carried by the request),
/// byte-balanced across ranges. Called by PlanCompaction; exposed for tests.
void PickSubcompactionBoundaries(const CompactionRequest& req,
                                 int max_subcompactions,
                                 CompactionPlan* plan);

}  // namespace compaction
}  // namespace talus

#endif  // TALUS_COMPACTION_COMPACTION_PLANNER_H_
