// Merge stage of the compaction pipeline (DESIGN.md §2.8). Executes a
// CompactionPlan with NO DB mutex: the plan's FileMetaPtr references pin the
// input SSTs, readers come from the table cache, and file numbers come from
// the shared atomic counter, so nothing here touches engine state.
//
// The key space is split at the plan's boundaries into key-range
// subcompactions. With a thread pool attached (kBackground mode) the
// coordinator fans the ranges out over the pool and joins them; without one
// (kInline, or max_subcompactions == 1) the ranges run serially on the
// calling thread, preserving the seed's deterministic behavior.
#ifndef TALUS_COMPACTION_COMPACTION_EXECUTOR_H_
#define TALUS_COMPACTION_COMPACTION_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "compaction/compaction_plan.h"
#include "compaction/sorted_output.h"
#include "exec/thread_pool.h"
#include "metrics/subcompaction_stats.h"
#include "read/table_cache.h"
#include "util/histogram.h"
#include "util/status.h"

namespace talus {
namespace compaction {

class CompactionExecutor {
 public:
  /// Optional newest merge input built fresh per subcompaction — the
  /// immutable memtable of a leveling flush merge. Must produce iterators
  /// that stay valid for the executor's whole Run() call.
  using ExtraInputFactory = std::function<std::unique_ptr<Iterator>()>;

  struct Result {
    /// Output files in global key order (subcompaction ranges concatenated).
    /// On failure this still lists every finished file so the caller can
    /// delete the orphans.
    std::vector<FileMetaPtr> outputs;
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    /// Subcompactions the plan was split into.
    size_t fanout = 1;
  };

  CompactionExecutor(OutputShape shape, read::TableCache* table_cache);

  /// Attaches the background pool used for fan-out. nullptr (the default)
  /// runs every subcompaction serially on the caller's thread.
  void SetPool(exec::ThreadPool* pool) { pool_ = pool; }

  /// Executes the plan's merge stage. `extra` (may be null) contributes the
  /// newest input to every subcompaction's merge. Thread-safe; does not
  /// take the DB mutex.
  Status Run(const CompactionPlan& plan, const ExtraInputFactory& extra,
             Result* result);

  metrics::SubcompactionStats GetStats() const;

 private:
  struct Subcompaction {
    bool has_begin = false, has_end = false;
    std::string begin, end;  // User-key range [begin, end).
    std::vector<FileMetaPtr> outputs;
    uint64_t bytes_read = 0;
    Status status;
  };

  void RunSubcompaction(const CompactionPlan& plan,
                        const ExtraInputFactory& extra, Subcompaction* sub);

  const OutputShape shape_;
  read::TableCache* table_cache_;
  exec::ThreadPool* pool_ = nullptr;

  // ---- Observability (talus.exec) ----
  std::atomic<uint64_t> subs_scheduled_{0};
  std::atomic<uint64_t> subs_completed_{0};
  std::atomic<size_t> subs_active_{0};
  // Runs with an extra input are leveling flush merges, counted apart from
  // compactions so the fanout histogram measures compaction parallelism
  // only (under leveling policies flush merges would otherwise dominate).
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> flush_merges_{0};
  mutable std::mutex fanout_mu_;
  Histogram fanout_hist_;
};

}  // namespace compaction
}  // namespace talus

#endif  // TALUS_COMPACTION_COMPACTION_EXECUTOR_H_
