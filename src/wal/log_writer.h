// LogWriter: appends CRC-framed records to a WritableFile (WAL, MANIFEST).
// Not internally synchronized: the DB serializes WAL appends through the
// group-commit leader (DESIGN.md §2.9), so at most one thread touches a
// LogWriter at a time even though the DB mutex is not held.
#ifndef TALUS_WAL_LOG_WRITER_H_
#define TALUS_WAL_LOG_WRITER_H_

#include <cstdint>
#include <memory>

#include "env/env.h"
#include "wal/log_format.h"

namespace talus {
namespace wal {

class LogWriter {
 public:
  explicit LogWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}

  Status AddRecord(const Slice& payload);
  Status Sync() {
    Status s = file_->Sync();
    if (s.ok()) unsynced_bytes_ = 0;
    return s;
  }
  Status Close() { return file_->Close(); }

  /// Bytes appended since the last successful Sync() (0 = the log tail is
  /// durable). Introspection for callers deciding whether a sync is owed.
  uint64_t unsynced_bytes() const { return unsynced_bytes_; }

 private:
  std::unique_ptr<WritableFile> file_;
  uint64_t unsynced_bytes_ = 0;
};

}  // namespace wal
}  // namespace talus

#endif  // TALUS_WAL_LOG_WRITER_H_
