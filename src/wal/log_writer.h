// LogWriter: appends CRC-framed records to a WritableFile (WAL, MANIFEST).
#ifndef TALUS_WAL_LOG_WRITER_H_
#define TALUS_WAL_LOG_WRITER_H_

#include <memory>

#include "env/env.h"
#include "wal/log_format.h"

namespace talus {
namespace wal {

class LogWriter {
 public:
  explicit LogWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}

  Status AddRecord(const Slice& payload);
  Status Sync() { return file_->Sync(); }
  Status Close() { return file_->Close(); }

 private:
  std::unique_ptr<WritableFile> file_;
};

}  // namespace wal
}  // namespace talus

#endif  // TALUS_WAL_LOG_WRITER_H_
