// Write-ahead log record framing:
//   masked_crc32c fixed32 | length fixed32 | payload
// Records are self-delimiting; replay stops at the first corrupt or
// truncated record (standard torn-write handling).
#ifndef TALUS_WAL_LOG_FORMAT_H_
#define TALUS_WAL_LOG_FORMAT_H_

#include <cstdint>

namespace talus {
namespace wal {

static constexpr size_t kHeaderSize = 8;  // crc32c (4) + length (4).

}  // namespace wal
}  // namespace talus

#endif  // TALUS_WAL_LOG_FORMAT_H_
