// LogReader: replays CRC-framed records. Stops cleanly at EOF or at the
// first torn/corrupt record.
#ifndef TALUS_WAL_LOG_READER_H_
#define TALUS_WAL_LOG_READER_H_

#include <memory>
#include <string>

#include "env/env.h"
#include "wal/log_format.h"

namespace talus {
namespace wal {

class LogReader {
 public:
  explicit LogReader(std::unique_ptr<SequentialFile> file)
      : file_(std::move(file)) {}

  /// Reads the next record into *record. Returns false at EOF or on a
  /// corrupt/truncated tail (check corruption_detected() to distinguish).
  bool ReadRecord(std::string* record);

  bool corruption_detected() const { return corruption_; }

 private:
  bool ReadFull(size_t n, std::string* out);

  std::unique_ptr<SequentialFile> file_;
  bool corruption_ = false;
};

}  // namespace wal
}  // namespace talus

#endif  // TALUS_WAL_LOG_READER_H_
