#include "wal/log_writer.h"

#include "util/coding.h"
#include "util/crc32c.h"

namespace talus {
namespace wal {

Status LogWriter::AddRecord(const Slice& payload) {
  std::string header;
  header.reserve(kHeaderSize);
  uint32_t crc = crc32c::Value(payload.data(), payload.size());
  PutFixed32(&header, crc32c::Mask(crc));
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  Status s = file_->Append(Slice(header));
  if (s.ok()) {
    s = file_->Append(payload);
  }
  if (s.ok()) unsynced_bytes_ += kHeaderSize + payload.size();
  return s;
}

}  // namespace wal
}  // namespace talus
