#include "wal/log_reader.h"

#include "util/coding.h"
#include "util/crc32c.h"

namespace talus {
namespace wal {

bool LogReader::ReadFull(size_t n, std::string* out) {
  out->clear();
  out->reserve(n);
  while (out->size() < n) {
    Slice chunk;
    // SequentialFile::Read may return fewer bytes than requested; scratch is
    // only used by file-backed environments.
    std::string scratch(n - out->size(), '\0');
    Status s = file_->Read(n - out->size(), &chunk, scratch.data());
    if (!s.ok() || chunk.empty()) return false;
    out->append(chunk.data(), chunk.size());
  }
  return true;
}

bool LogReader::ReadRecord(std::string* record) {
  std::string header;
  if (!ReadFull(kHeaderSize, &header)) {
    // Clean EOF (or torn header — indistinguishable, treated as end).
    return false;
  }
  uint32_t masked_crc = DecodeFixed32(header.data());
  uint32_t length = DecodeFixed32(header.data() + 4);
  if (!ReadFull(length, record)) {
    corruption_ = true;  // Torn payload.
    return false;
  }
  uint32_t actual = crc32c::Value(record->data(), record->size());
  if (crc32c::Unmask(masked_crc) != actual) {
    corruption_ = true;
    return false;
  }
  return true;
}

}  // namespace wal
}  // namespace talus
