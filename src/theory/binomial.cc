#include "theory/binomial.h"

namespace talus {
namespace theory {

uint64_t Binomial(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  // Multiplicative formula; result * (n-k+i) / i is exact at every step
  // because a product of i consecutive integers is divisible by i!.
  __uint128_t result = 1;
  for (uint64_t i = 1; i <= k; i++) {
    const uint64_t num = n - k + i;
    if (result > (static_cast<__uint128_t>(kBinomialInf) << 32)) {
      return kBinomialInf;  // Far past saturation; stop before overflow.
    }
    result = result * num / i;
  }
  if (result > kBinomialInf - 1) return kBinomialInf;
  return static_cast<uint64_t>(result);
}

uint64_t FindM(uint64_t n, uint64_t l) {
  if (n == 0 || l == 0) return l;
  // C(m, l) grows monotonically in m; bracket then binary search.
  uint64_t lo = l, hi = l;
  while (Binomial(hi, l) <= n && hi < (1ull << 62)) {
    lo = hi;
    hi *= 2;
  }
  // Invariant: C(lo, l) <= n < C(hi, l).
  while (lo + 1 < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (Binomial(mid, l) <= n) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint64_t FindK(uint64_t n, uint64_t l) {
  if (n <= 1) return 1;
  if (l == 0) return n;
  uint64_t lo = 0, hi = 1;
  while (Binomial(hi + l - 1, l) < n && hi < (1ull << 62)) {
    lo = hi;
    hi *= 2;
  }
  // Invariant: C(lo+l-1, l) < n <= C(hi+l-1, l).
  while (lo + 1 < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (Binomial(mid + l - 1, l) < n) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace theory
}  // namespace talus
