#include "theory/schemes.h"

#include <cmath>

#include "theory/binomial.h"

namespace talus {
namespace theory {

TieringSimResult SimulateHorizontalTiering(uint64_t n, int levels,
                                           uint64_t k) {
  TieringSimResult result;
  std::vector<uint64_t> counters(levels, k);
  // Birth flush index of every live run, per level (0-based level index).
  std::vector<std::vector<uint64_t>> runs(levels);

  for (uint64_t t = 1; t <= n; t++) {
    runs[0].push_back(t);  // Buffer flush lands as a new run in level 1.
    if (counters[0] > 0) counters[0]--;

    // Scan ascending; triggered levels form a consecutive prefix [0..e]
    // which we merge into one (I, 1, e+2) op (footnote-6 style, and exactly
    // the multi-level compactions of Problem 1).
    int cascade_end = -1;
    for (int i = 0; i + 1 < levels; i++) {
      if (counters[i] == 0) {
        cascade_end = i;
        if (counters[i + 1] > 0) counters[i + 1]--;
        for (int j = 0; j <= i; j++) counters[j] = counters[i + 1];
      } else {
        break;  // Triggers are always a prefix (see analysis in tests).
      }
    }
    if (cascade_end >= 0) {
      const int target = cascade_end + 1;  // 0-based target level.
      for (int lvl = 0; lvl <= cascade_end; lvl++) {
        for (uint64_t birth : runs[lvl]) {
          result.read_cost += t - birth;
        }
        runs[lvl].clear();
      }
      runs[target].push_back(t);
      result.events.push_back(CompactionEvent{t, target + 1});
    }

    if (result.drained_at == 0) {
      bool all_zero = true;
      for (uint64_t c : counters) {
        if (c != 0) {
          all_zero = false;
          break;
        }
      }
      if (all_zero) result.drained_at = t;
    }
  }

  for (int lvl = 0; lvl < levels; lvl++) {
    for (uint64_t birth : runs[lvl]) {
      result.read_cost += n - birth;
    }
    result.final_runs_per_level.push_back(runs[lvl].size());
  }
  return result;
}

LevelingSimResult SimulateHorizontalLeveling(uint64_t n, int levels,
                                             uint64_t delta) {
  LevelingSimResult result;
  std::vector<uint64_t> counters(levels, 0);
  std::vector<uint64_t> sizes(levels, 0);  // In buffers.

  for (uint64_t t = 1; t <= n; t++) {
    counters[0]++;
    // Determine the triggered prefix [0..e]; counter updates are exactly
    // Algorithm 1's (they do not depend on how the data moves).
    int cascade_end = -1;
    for (int i = 0; i + 1 < levels; i++) {
      const uint64_t relax = (i == 0) ? delta : 0;
      if (counters[i] > counters[i + 1] + relax) {
        cascade_end = i;
        counters[i + 1]++;
        counters[i] = 0;
      } else {
        break;
      }
    }

    if (cascade_end >= 0) {
      // Footnote 6: one merged op writes buffer + levels 1..e+1 (0-based
      // 0..cascade_end) plus the existing target data, once.
      const int target = cascade_end + 1;
      uint64_t moved = 1;  // The buffer.
      for (int lvl = 0; lvl <= cascade_end; lvl++) {
        moved += sizes[lvl];
        sizes[lvl] = 0;
      }
      result.write_cost += moved + sizes[target];
      sizes[target] += moved;
      result.events.push_back(CompactionEvent{t, target + 1});
    } else {
      // Plain flush: merge the buffer with level 1's existing run.
      result.write_cost += sizes[0] + 1;
      sizes[0] += 1;
    }
  }
  result.final_level_sizes = sizes;
  return result;
}

uint64_t TieringReadCostClosedForm(uint64_t n, int levels) {
  if (n <= 1 || levels < 1) return 0;
  const uint64_t l = static_cast<uint64_t>(levels);
  const uint64_t m = FindM(n, l);
  return l * Binomial(m, l + 1) + (m - l + 1) * (n - Binomial(m, l));
}

uint64_t LevelingWriteCostClosedForm(uint64_t n, int levels) {
  if (n == 0 || levels < 1) return 0;
  const uint64_t l = static_cast<uint64_t>(levels);
  const uint64_t m = FindM(n, l);
  return l * Binomial(m + 1, l + 1) + (m + 1) * (n - Binomial(m, l)) -
         (l - 1) * n;
}

uint64_t SkewDelta(double alpha) {
  if (alpha <= 0) return 0;
  if (alpha >= 1) alpha = 1 - 1e-9;
  const double budget = alpha / (1.0 - alpha);
  uint64_t delta = 0;
  while (static_cast<double>((delta + 1) * (delta + 2)) / 2.0 <= budget) {
    delta++;
    if (delta > 1u << 20) break;  // Defensive bound.
  }
  return delta;
}

}  // namespace theory
}  // namespace talus
