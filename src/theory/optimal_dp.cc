#include "theory/optimal_dp.h"

#include <algorithm>
#include <cassert>

#include "theory/binomial.h"

namespace talus {
namespace theory {

uint64_t OptimalReadCostDp::Cost(uint64_t n, int levels) {
  return Solve(n, levels);
}

uint64_t OptimalReadCostDp::Solve(uint64_t n, int levels) {
  if (n <= 1) return 0;
  if (levels <= 1) return Binomial(n, 2);
  auto it = memo_.find(Key(n, levels));
  if (it != memo_.end()) return it->second;

  uint64_t best = ~0ull;
  for (uint64_t i = 1; i <= n - 1; i++) {
    const uint64_t c = Solve(i, levels - 1) + (n - i) + Solve(n - i, levels);
    if (c < best) best = c;
  }
  memo_[Key(n, levels)] = best;
  return best;
}

uint64_t OptimalReadCostDp::BestSplit(uint64_t n, int levels) {
  assert(n > 1 && levels > 1);
  uint64_t best = ~0ull, best_i = 1;
  for (uint64_t i = 1; i <= n - 1; i++) {
    const uint64_t c = Solve(i, levels - 1) + (n - i) + Solve(n - i, levels);
    if (c < best) {
      best = c;
      best_i = i;
    }
  }
  return best_i;
}

void OptimalReadCostDp::BuildSequence(uint64_t n, int levels,
                                      uint64_t flush_offset,
                                      std::vector<CompactionEvent>* out) {
  if (n <= 1 || levels <= 1) return;  // Trivial subproblems: no compactions.
  const uint64_t i = BestSplit(n, levels);
  // S1: optimal schedule for the first i flushes over levels 1..ℓ-1.
  BuildSequence(i, levels - 1, flush_offset, out);
  // p*_f: after flush i, everything in levels 1..ℓ-1 merges into level ℓ.
  out->push_back(CompactionEvent{flush_offset + i, levels});
  // S2: the remaining n-i flushes over all ℓ levels.
  BuildSequence(n - i, levels, flush_offset + i, out);
}

std::vector<CompactionEvent> OptimalReadCostDp::Sequence(uint64_t n,
                                                         int levels) {
  std::vector<CompactionEvent> out;
  BuildSequence(n, levels, 0, &out);
  std::sort(out.begin(), out.end(),
            [](const CompactionEvent& a, const CompactionEvent& b) {
              return a.flush_index < b.flush_index ||
                     (a.flush_index == b.flush_index &&
                      a.to_level < b.to_level);
            });
  return out;
}

}  // namespace theory
}  // namespace talus
