// Exact binomial coefficients with overflow saturation, plus the inverse
// queries the paper's formulas need:
//   * m with C(m, ℓ) ≤ n ≤ C(m+1, ℓ)               (Lemmas 5.1/5.2/9.4)
//   * smallest k with C(k+ℓ-1, ℓ) ≥ n              (Algorithm 2, line 2)
#ifndef TALUS_THEORY_BINOMIAL_H_
#define TALUS_THEORY_BINOMIAL_H_

#include <cstdint>

namespace talus {
namespace theory {

/// Saturating value for binomials that exceed uint64.
inline constexpr uint64_t kBinomialInf = ~0ull;

/// C(n, k), saturating at kBinomialInf. C(n, k) = 0 for n < k.
uint64_t Binomial(uint64_t n, uint64_t k);

/// Largest m with C(m, l) <= n (requires n >= 1, l >= 1; C(l, l) = 1 so the
/// result is >= l). The paper's "integer m satisfying C(m,ℓ) ≤ n ≤ C(m+1,ℓ)".
uint64_t FindM(uint64_t n, uint64_t l);

/// Smallest k with C(k + l - 1, l) >= n (Algorithm 2 initialization).
uint64_t FindK(uint64_t n, uint64_t l);

}  // namespace theory
}  // namespace talus

#endif  // TALUS_THEORY_BINOMIAL_H_
