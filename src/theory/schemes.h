// Counter-simulators for the growth-scheme algorithms plus the paper's
// closed-form cost formulas. These operate purely on the abstract model
// (flush = 1 buffer, r lookups per flush interval) and are the reference
// implementations the engine policies and the property tests check against.
//
//  * SimulateHorizontalLeveling — Algorithm 1, with the footnote-6 cascade
//    accounting (consecutive triggered compactions merge into one op) and
//    the §5.3 skew relaxation δ on the first level's trigger.
//  * SimulateHorizontalTiering  — Algorithm 2 (counters start at k and count
//    down; cascades merge into a single multi-level op, matching the
//    (I, l1, l2) compactions of Problem 1).
//  * Closed forms — Lemma 9.4 (tiering read cost) and Lemma 5.2's numerator
//    (leveling write cost).
#ifndef TALUS_THEORY_SCHEMES_H_
#define TALUS_THEORY_SCHEMES_H_

#include <cstdint>
#include <vector>

namespace talus {
namespace theory {

/// One compaction in a simulated schedule: after flush `flush_index`
/// (1-based), all runs in levels [1, to_level-1] merge into `to_level`
/// (levels 1-based, per the paper's Problem 1 triples (I, l1, l2) with
/// l1 = 1 by Lemma 9.1).
struct CompactionEvent {
  uint64_t flush_index = 0;
  int to_level = 0;
};

struct TieringSimResult {
  /// Total read cost with r = 1 lookups per flush interval: each run alive
  /// during an interval contributes one probe.
  uint64_t read_cost = 0;
  /// Flush index at which all counters reached zero (Lemma 4.1), or 0 if
  /// the counters never fully drained within n flushes.
  uint64_t drained_at = 0;
  std::vector<CompactionEvent> events;
  /// Runs alive at the end, per level (1-based index 0 = level 1).
  std::vector<uint64_t> final_runs_per_level;
};

/// Simulates Algorithm 2 with `levels` ≥ 1, counters initialized to k, for
/// exactly n buffer flushes.
TieringSimResult SimulateHorizontalTiering(uint64_t n, int levels, uint64_t k);

struct LevelingSimResult {
  /// Total bytes written in buffer units under footnote-6 accounting.
  uint64_t write_cost = 0;
  std::vector<CompactionEvent> events;
  /// Level sizes at the end, in buffers (index 0 = level 1).
  std::vector<uint64_t> final_level_sizes;
};

/// Simulates Algorithm 1 with `levels` ≥ 1 for n flushes. `delta` relaxes
/// the first level's trigger to C1 > C2 + δ (§5.3, Eq. 6).
LevelingSimResult SimulateHorizontalLeveling(uint64_t n, int levels,
                                             uint64_t delta = 0);

/// Lemma 9.4 / Theorem 4.2: optimal total read cost τ(n, ℓ) with r = 1:
///   τ(n,ℓ) = ℓ·C(m, ℓ+1) + (m−ℓ+1)·(n − C(m, ℓ)),  C(m,ℓ) ≤ n ≤ C(m+1,ℓ).
uint64_t TieringReadCostClosedForm(uint64_t n, int levels);

/// Lemma 5.2 numerator: total write cost (in buffers) of horizontal-leveling:
///   ℓ·C(m+1, ℓ+1) + (m+1)·(n − C(m, ℓ)) − (ℓ−1)·n.
uint64_t LevelingWriteCostClosedForm(uint64_t n, int levels);

/// §5.3, Eq. 6: largest integer δ ≥ 0 with δ(δ+1)/2 ≤ α/(1−α).
uint64_t SkewDelta(double alpha);

}  // namespace theory
}  // namespace talus

#endif  // TALUS_THEORY_SCHEMES_H_
