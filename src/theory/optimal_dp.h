// OptimalReadCostDp: exact dynamic program for Problem 1 (ψ(n, ℓ)) following
// Lemma 9.2:
//
//   τ(1, ℓ) = 0
//   τ(n, 1) = C(n, 2) · r
//   τ(n, ℓ) = min_{1 ≤ i ≤ n−1} { τ(i, ℓ−1) + (n−i)·r + τ(n−i, ℓ) }
//
// Used by the property tests to certify Theorem 4.2 (Algorithm 2 achieves
// the optimum) and Lemma 9.4 (the closed form equals the DP), and by the
// theory bench to regenerate the optimality tables. r = 1 throughout;
// multiply externally for other lookup rates.
#ifndef TALUS_THEORY_OPTIMAL_DP_H_
#define TALUS_THEORY_OPTIMAL_DP_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "theory/schemes.h"

namespace talus {
namespace theory {

class OptimalReadCostDp {
 public:
  /// Optimal total read cost τ(n, levels) with r = 1.
  uint64_t Cost(uint64_t n, int levels);

  /// One optimal compaction sequence for ψ(n, levels), as flush-indexed
  /// events (to_level is 1-based, events sorted by flush index).
  std::vector<CompactionEvent> Sequence(uint64_t n, int levels);

 private:
  uint64_t Solve(uint64_t n, int levels);
  /// argmin index i for the recurrence at (n, levels); requires n>1,levels>1.
  uint64_t BestSplit(uint64_t n, int levels);
  void BuildSequence(uint64_t n, int levels, uint64_t flush_offset,
                     std::vector<CompactionEvent>* out);

  static uint64_t Key(uint64_t n, int levels) {
    return (n << 5) | static_cast<uint64_t>(levels);
  }

  std::unordered_map<uint64_t, uint64_t> memo_;
};

}  // namespace theory
}  // namespace talus

#endif  // TALUS_THEORY_OPTIMAL_DP_H_
