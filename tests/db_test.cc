// Engine integration tests: every growth policy must present identical
// user-visible semantics. A model std::map oracle checks reads after random
// op sequences that cross many flushes and compactions.
#include "lsm/db.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "util/random.h"
#include "workload/generator.h"

namespace talus {
namespace {

DbOptions SmallOptions(Env* env, const GrowthPolicyConfig& policy) {
  DbOptions opts;
  opts.env = env;
  opts.path = "/db";
  opts.write_buffer_size = 4 << 10;  // Tiny buffer: many flushes.
  opts.target_file_size = 4 << 10;
  opts.block_size = 1024;
  opts.block_cache_bytes = 64 << 10;
  opts.policy = policy;
  return opts;
}

struct NamedPolicy {
  const char* name;
  GrowthPolicyConfig config;
};

std::vector<NamedPolicy> AllPolicies() {
  return {
      {"VT-Level-Part", GrowthPolicyConfig::VTLevelPart(3)},
      {"VT-Level-Full", GrowthPolicyConfig::VTLevelFull(3)},
      {"VT-Tier-Part", GrowthPolicyConfig::VTTierPart(3)},
      {"VT-Tier-Full", GrowthPolicyConfig::VTTierFull(3)},
      {"RocksDB-Tuned", GrowthPolicyConfig::RocksDBTuned()},
      {"Universal", GrowthPolicyConfig::Universal()},
      {"HR-Level", GrowthPolicyConfig::HRLevel(3)},
      {"HR-Tier", GrowthPolicyConfig::HRTier(3, 1 << 20)},
      {"VRN-Level", GrowthPolicyConfig::VRNLevel(3)},
      {"VRN-Tier", GrowthPolicyConfig::VRNTier(3)},
      {"Vertiorizon", GrowthPolicyConfig::Vertiorizon(3)},
      {"Lazy-Level", GrowthPolicyConfig::LazyLeveling(3, 4, false)},
      {"Lazy-Level+VRN", GrowthPolicyConfig::LazyLeveling(3, 4, true)},
  };
}

class DbPolicyTest : public ::testing::TestWithParam<NamedPolicy> {};

TEST_P(DbPolicyTest, PutGetRoundTrip) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(SmallOptions(env.get(), GetParam().config), &db).ok());

  std::map<std::string, std::string> model;
  Random rnd(1234);
  for (int i = 0; i < 3000; i++) {
    std::string key = workload::FormatKey(rnd.Uniform(500), 16);
    std::string value = "value-" + std::to_string(i);
    ASSERT_TRUE(db->Put(key, value).ok()) << GetParam().name;
    model[key] = value;
  }

  for (const auto& [k, v] : model) {
    std::string value;
    Status s = db->Get(k, &value);
    ASSERT_TRUE(s.ok()) << GetParam().name << " key " << k << ": "
                        << s.ToString();
    EXPECT_EQ(value, v);
  }
  // Missing keys stay missing.
  for (int i = 600; i < 650; i++) {
    std::string value;
    EXPECT_TRUE(db->Get(workload::FormatKey(i, 16), &value).IsNotFound());
  }
}

TEST_P(DbPolicyTest, DeletesAndReinserts) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(SmallOptions(env.get(), GetParam().config), &db).ok());

  std::map<std::string, std::string> model;
  Random rnd(99);
  for (int i = 0; i < 4000; i++) {
    std::string key = workload::FormatKey(rnd.Uniform(300), 16);
    if (rnd.OneIn(4)) {
      ASSERT_TRUE(db->Delete(key).ok());
      model.erase(key);
    } else {
      std::string value = "v" + std::to_string(i);
      ASSERT_TRUE(db->Put(key, value).ok());
      model[key] = value;
    }
  }

  for (int i = 0; i < 300; i++) {
    std::string key = workload::FormatKey(i, 16);
    std::string value;
    Status s = db->Get(key, &value);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_TRUE(s.IsNotFound()) << GetParam().name << " key " << key;
    } else {
      ASSERT_TRUE(s.ok()) << GetParam().name << " key " << key;
      EXPECT_EQ(value, it->second);
    }
  }
}

TEST_P(DbPolicyTest, ScanMatchesModel) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(SmallOptions(env.get(), GetParam().config), &db).ok());

  std::map<std::string, std::string> model;
  Random rnd(4321);
  for (int i = 0; i < 2500; i++) {
    std::string key = workload::FormatKey(rnd.Uniform(400), 16);
    if (rnd.OneIn(5)) {
      db->Delete(key);
      model.erase(key);
    } else {
      std::string value = "sv" + std::to_string(i);
      db->Put(key, value);
      model[key] = value;
    }
  }

  // Full scan equals the model.
  auto iter = db->NewIterator();
  iter->SeekToFirst();
  auto it = model.begin();
  while (iter->Valid()) {
    ASSERT_NE(it, model.end()) << GetParam().name;
    EXPECT_EQ(iter->key().ToString(), it->first);
    EXPECT_EQ(iter->value().ToString(), it->second);
    iter->Next();
    ++it;
  }
  EXPECT_EQ(it, model.end()) << GetParam().name;

  // Bounded scans from random positions.
  for (int trial = 0; trial < 20; trial++) {
    std::string start = workload::FormatKey(rnd.Uniform(400), 16);
    std::vector<std::pair<std::string, std::string>> got;
    ASSERT_TRUE(db->Scan(start, 10, &got).ok());
    auto mit = model.lower_bound(start);
    for (const auto& [k, v] : got) {
      ASSERT_NE(mit, model.end());
      EXPECT_EQ(k, mit->first);
      EXPECT_EQ(v, mit->second);
      ++mit;
    }
  }
}

TEST_P(DbPolicyTest, ReopenRecoversEverything) {
  auto env = NewMemEnv();
  std::map<std::string, std::string> model;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(
        DB::Open(SmallOptions(env.get(), GetParam().config), &db).ok());
    Random rnd(55);
    for (int i = 0; i < 2000; i++) {
      std::string key = workload::FormatKey(rnd.Uniform(250), 16);
      std::string value = "r" + std::to_string(i);
      ASSERT_TRUE(db->Put(key, value).ok());
      model[key] = value;
    }
    // No explicit flush: the tail of the data is only in the WAL.
  }
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(
        DB::Open(SmallOptions(env.get(), GetParam().config), &db).ok())
        << GetParam().name;
    for (const auto& [k, v] : model) {
      std::string value;
      Status s = db->Get(k, &value);
      ASSERT_TRUE(s.ok()) << GetParam().name << " lost " << k;
      EXPECT_EQ(value, v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, DbPolicyTest, ::testing::ValuesIn(AllPolicies()),
    [](const ::testing::TestParamInfo<NamedPolicy>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Db, EmptyKeyRejected) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(SmallOptions(env.get(), GrowthPolicyConfig::VTLevelPart(3)),
               &db)
          .ok());
  EXPECT_TRUE(db->Put("", "v").IsInvalidArgument());
}

TEST(Db, OverwritesReturnLatest) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(SmallOptions(env.get(), GrowthPolicyConfig::VTLevelFull(3)),
               &db)
          .ok());
  const std::string key = workload::FormatKey(1, 16);
  for (int i = 0; i < 500; i++) {
    // Interleave other keys to force flushes between versions.
    ASSERT_TRUE(db->Put(key, "version" + std::to_string(i)).ok());
    ASSERT_TRUE(
        db->Put(workload::FormatKey(100 + i, 16), std::string(200, 'x')).ok());
  }
  std::string value;
  ASSERT_TRUE(db->Get(key, &value).ok());
  EXPECT_EQ(value, "version499");
}

TEST(Db, StatsAccumulate) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(SmallOptions(env.get(), GrowthPolicyConfig::VTLevelPart(3)),
               &db)
          .ok());
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(
        db->Put(workload::FormatKey(i % 1500, 16), std::string(100, 'v')).ok());
  }
  std::string value;
  for (int i = 0; i < 100; i++) {
    db->Get(workload::FormatKey(i, 16), &value);
  }
  const EngineStats& stats = db->stats();
  EXPECT_EQ(stats.puts, 2000u);
  EXPECT_EQ(stats.gets, 100u);
  EXPECT_EQ(stats.gets_found, 100u);
  EXPECT_GT(stats.flushes, 0u);
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_GT(stats.WriteAmplification(), 1.0);
  EXPECT_GT(stats.ReadAmplification(), 0.0);
  EXPECT_GT(env->io_stats()->peak_storage_bytes(), 0u);
}

TEST(Db, WalDisabledStillWorksWithExplicitFlush) {
  auto env = NewMemEnv();
  DbOptions opts = SmallOptions(env.get(), GrowthPolicyConfig::VTLevelPart(3));
  opts.enable_wal = false;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db->Put(workload::FormatKey(i, 16), "v").ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  std::string value;
  EXPECT_TRUE(db->Get(workload::FormatKey(7, 16), &value).ok());
}

TEST(Db, PolicyMismatchOnReopenRejected) {
  auto env = NewMemEnv();
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(
        DB::Open(SmallOptions(env.get(), GrowthPolicyConfig::VTLevelPart(3)),
                 &db)
            .ok());
    db->Put(workload::FormatKey(1, 16), "v");
  }
  std::unique_ptr<DB> db;
  Status s =
      DB::Open(SmallOptions(env.get(), GrowthPolicyConfig::HRLevel(3)), &db);
  EXPECT_TRUE(s.IsInvalidArgument());
}

}  // namespace
}  // namespace talus
