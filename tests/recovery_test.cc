// Crash-consistency tests: the WAL + manifest protocol must never lose
// acknowledged-durable writes or leave the store unopenable, under injected
// write failures and simulated power loss (FaultInjectionEnv).
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "env/fault_env.h"
#include "lsm/db.h"
#include "workload/generator.h"

namespace talus {
namespace {

DbOptions Opts(Env* env, bool wal_sync) {
  DbOptions opts;
  opts.env = env;
  opts.path = "/crash";
  opts.write_buffer_size = 4 << 10;
  opts.target_file_size = 4 << 10;
  opts.block_size = 1024;
  opts.wal_sync_writes = wal_sync;
  opts.policy = GrowthPolicyConfig::VTLevelPart(3);
  return opts;
}

std::string Key(int i) { return workload::FormatKey(i, 16); }

TEST(CrashRecovery, SyncedWalLosesNothing) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(Opts(&env, /*wal_sync=*/true), &db).ok());
    for (int i = 0; i < 500; i++) {
      ASSERT_TRUE(db->Put(Key(i), "value" + std::to_string(i)).ok());
    }
    // Power loss: drop everything unsynced, abandon the DB object.
    env.DropUnsyncedWrites();
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Opts(&env, true), &db).ok());
  for (int i = 0; i < 500; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(Key(i), &value).ok()) << "lost key " << i;
    EXPECT_EQ(value, "value" + std::to_string(i));
  }
}

TEST(CrashRecovery, UnsyncedWalKeepsFlushedPrefix) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());
  int durable_upto = -1;  // Last key written before the last flush.
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(Opts(&env, /*wal_sync=*/false), &db).ok());
    uint64_t flushes_seen = 0;
    for (int i = 0; i < 800; i++) {
      ASSERT_TRUE(db->Put(Key(i), std::string(200, 'v')).ok());
      if (db->stats().flushes > flushes_seen) {
        flushes_seen = db->stats().flushes;
        durable_upto = i;  // Everything up to i is now in synced SSTs.
      }
    }
    ASSERT_GE(durable_upto, 0);
    env.DropUnsyncedWrites();
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Opts(&env, false), &db).ok());
  for (int i = 0; i <= durable_upto; i++) {
    std::string value;
    EXPECT_TRUE(db->Get(Key(i), &value).ok()) << "lost flushed key " << i;
  }
}

TEST(CrashRecovery, WriteFailuresSurfaceAndStoreStaysOpenable) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(Opts(&env, true), &db).ok());
    for (int i = 0; i < 100; i++) {
      ASSERT_TRUE(db->Put(Key(i), std::string(200, 'v')).ok());
    }
    env.FailAfterWrites(50);
    // Keep writing until the injected failure surfaces.
    bool failed = false;
    for (int i = 100; i < 2000; i++) {
      if (!db->Put(Key(i), std::string(200, 'v')).ok()) {
        failed = true;
        break;
      }
    }
    EXPECT_TRUE(failed);
    env.Disarm();
    env.DropUnsyncedWrites();
  }
  // The store must reopen cleanly after the failure + crash.
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Opts(&env, true), &db).ok());
  std::string value;
  // Everything acknowledged before the failure window is present (synced
  // WAL mode).
  for (int i = 0; i < 100; i++) {
    EXPECT_TRUE(db->Get(Key(i), &value).ok()) << "lost key " << i;
  }
  // And the store accepts new writes.
  EXPECT_TRUE(db->Put(Key(9999), "after-recovery").ok());
  EXPECT_TRUE(db->Get(Key(9999), &value).ok());
}

class CrashPointTest : public ::testing::TestWithParam<int> {};

// Sweep the failure point across the write stream: whatever the crash
// position, reopening must succeed and recovered contents must be a
// prefix-consistent subset of acknowledged writes.
TEST_P(CrashPointTest, RecoversConsistentState) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());
  std::map<std::string, std::string> acked;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(Opts(&env, /*wal_sync=*/true), &db).ok());
    env.FailAfterWrites(GetParam());
    for (int i = 0; i < 600; i++) {
      const std::string key = Key(i % 150);
      const std::string value = "v" + std::to_string(i);
      if (db->Put(key, value).ok()) {
        acked[key] = value;
      } else {
        break;  // Engine reported the failure: stop like a client would.
      }
    }
    env.Disarm();
    env.DropUnsyncedWrites();
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Opts(&env, true), &db).ok())
      << "crash point " << GetParam();
  // With synced WAL, acknowledged implies durable. (The converse need not
  // hold: a failed op may still have reached the log.)
  for (const auto& [key, value] : acked) {
    std::string got;
    Status s = db->Get(key, &got);
    ASSERT_TRUE(s.ok()) << "crash point " << GetParam() << " lost " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrashPointTest,
                         ::testing::Values(10, 60, 150, 400, 900, 2000,
                                           5000));

}  // namespace
}  // namespace talus
