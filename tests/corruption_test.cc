// Corruption handling: damaged SSTs, manifests, and CURRENT files must
// surface Status::Corruption (or IOError), never crash or silently return
// wrong data.
#include <gtest/gtest.h>

#include <memory>

#include "env/env.h"
#include "lsm/db.h"
#include "lsm/filename.h"
#include "table/sst_builder.h"
#include "table/sst_reader.h"
#include "workload/generator.h"

namespace talus {
namespace {

// Rewrites `fname` with `mutate` applied to its contents.
void MutateFile(Env* env, const std::string& fname,
                const std::function<void(std::string*)>& mutate) {
  std::unique_ptr<SequentialFile> in;
  ASSERT_TRUE(env->NewSequentialFile(fname, &in).ok());
  std::string contents;
  std::string scratch(1 << 20, '\0');
  Slice chunk;
  while (in->Read(scratch.size(), &chunk, scratch.data()).ok() &&
         !chunk.empty()) {
    contents.append(chunk.data(), chunk.size());
  }
  mutate(&contents);
  std::unique_ptr<WritableFile> out;
  ASSERT_TRUE(env->NewWritableFile(fname, &out).ok());
  ASSERT_TRUE(out->Append(contents).ok());
  ASSERT_TRUE(out->Close().ok());
}

std::string BuildSst(Env* env, const std::string& fname, int entries) {
  SstBuilderOptions opts;
  std::unique_ptr<WritableFile> file;
  EXPECT_TRUE(env->NewWritableFile(fname, &file).ok());
  SstBuilder builder(opts, std::move(file));
  for (int i = 0; i < entries; i++) {
    builder.Add(InternalKey(workload::FormatKey(i, 16), i + 1, kTypeValue)
                    .Encode(),
                "value" + std::to_string(i));
  }
  EXPECT_TRUE(builder.Finish().ok());
  return fname;
}

TEST(SstCorruption, TruncatedFooterRejected) {
  auto env = NewMemEnv();
  BuildSst(env.get(), "/c1.sst", 500);
  MutateFile(env.get(), "/c1.sst",
             [](std::string* c) { c->resize(c->size() - 10); });
  std::unique_ptr<SstReader> reader;
  Status s = SstReader::Open(env.get(), "/c1.sst", 1, nullptr, &reader);
  EXPECT_FALSE(s.ok());
}

TEST(SstCorruption, BadMagicRejected) {
  auto env = NewMemEnv();
  BuildSst(env.get(), "/c2.sst", 100);
  MutateFile(env.get(), "/c2.sst",
             [](std::string* c) { (*c)[c->size() - 1] ^= 0xFF; });
  std::unique_ptr<SstReader> reader;
  Status s = SstReader::Open(env.get(), "/c2.sst", 1, nullptr, &reader);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(SstCorruption, TinyFileRejected) {
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env->NewWritableFile("/c3.sst", &f).ok());
  f->Append("not an sstable");
  f->Close();
  std::unique_ptr<SstReader> reader;
  Status s = SstReader::Open(env.get(), "/c3.sst", 1, nullptr, &reader);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(SstCorruption, GarbledIndexSurfacesOnOpenOrRead) {
  auto env = NewMemEnv();
  BuildSst(env.get(), "/c4.sst", 2000);
  // Flip bytes in the middle of the file (data/index region).
  MutateFile(env.get(), "/c4.sst", [](std::string* c) {
    for (size_t i = c->size() / 2; i < c->size() / 2 + 64 && i < c->size();
         i++) {
      (*c)[i] ^= 0xA5;
    }
  });
  std::unique_ptr<SstReader> reader;
  Status s = SstReader::Open(env.get(), "/c4.sst", 1, nullptr, &reader);
  if (s.ok()) {
    // Damage landed in a data block: lookups must either miss cleanly or
    // report corruption — and must not crash. (The iterator's status
    // surfaces the error when the bad block is touched.)
    auto iter = reader->NewIterator();
    iter->SeekToFirst();
    int steps = 0;
    while (iter->Valid() && steps < 5000) {
      iter->Next();
      steps++;
    }
    SUCCEED();
  } else {
    EXPECT_FALSE(s.ok());
  }
}

// Regression: a corrupt index entry used to read as "not found" (the seek
// died on CorruptionError but Get only checked Valid()). Both lookup paths
// must surface Corruption for a key whose search touches the bad entry.
TEST(SstCorruption, CorruptIndexEntrySurfacesOnGet) {
  auto env = NewMemEnv();
  BuildSst(env.get(), "/c5.sst", 1000);
  MutateFile(env.get(), "/c5.sst", [](std::string* c) {
    Footer footer;
    ASSERT_TRUE(footer
                    .DecodeFrom(Slice(c->data() + c->size() -
                                          Footer::kEncodedLength,
                                      Footer::kEncodedLength))
                    .ok());
    // Garble the first index entry's header (truncated/invalid varints).
    // The block trailer stays intact, so Open still succeeds.
    for (size_t i = 0; i < 8; i++) {
      (*c)[static_cast<size_t>(footer.index_handle.offset) + i] = '\xff';
    }
  });
  std::unique_ptr<SstReader> reader;
  ASSERT_TRUE(SstReader::Open(env.get(), "/c5.sst", 1, nullptr, &reader).ok());
  // The smallest key binary-searches to restart 0 and scans into the
  // garbled entry on both paths.
  const std::string key = workload::FormatKey(0, 16);
  for (const bool fast_path : {false, true}) {
    std::string value;
    Status s;
    const bool decided = reader->Get(LookupKey(key, kMaxSequenceNumber),
                                     &value, &s, nullptr, fast_path);
    ASSERT_TRUE(decided) << "fast_path=" << fast_path;
    EXPECT_TRUE(s.IsCorruption())
        << "fast_path=" << fast_path << " status=" << s.ToString();
  }
}

TEST(DbCorruption, ManifestDamageFailsOpen) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/db";
  opts.policy = GrowthPolicyConfig::VTLevelPart(3);
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    for (int i = 0; i < 100; i++) {
      db->Put(workload::FormatKey(i, 16), "v");
    }
    db->FlushMemTable();
  }
  // Find and damage the live manifest.
  std::vector<std::string> children;
  ASSERT_TRUE(env->GetChildren("/db", &children).ok());
  std::string manifest;
  for (const auto& c : children) {
    if (c.rfind("MANIFEST-", 0) == 0) manifest = "/db/" + c;
  }
  ASSERT_FALSE(manifest.empty());
  MutateFile(env.get(), manifest, [](std::string* c) {
    (*c)[c->size() / 2] ^= 0xFF;
  });
  std::unique_ptr<DB> db;
  Status s = DB::Open(opts, &db);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(DbCorruption, CurrentPointingNowhereFailsOpen) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/db2";
  opts.policy = GrowthPolicyConfig::VTLevelPart(3);
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    db->Put("k", "v");
  }
  std::unique_ptr<WritableFile> cur;
  ASSERT_TRUE(env->NewWritableFile("/db2/CURRENT", &cur).ok());
  cur->Append("MANIFEST-999999");
  cur->Close();
  std::unique_ptr<DB> db;
  EXPECT_FALSE(DB::Open(opts, &db).ok());
}

TEST(DbCorruption, GarbageCurrentFailsOpen) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/db3";
  opts.policy = GrowthPolicyConfig::VTLevelPart(3);
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    db->Put("k", "v");
  }
  std::unique_ptr<WritableFile> cur;
  ASSERT_TRUE(env->NewWritableFile("/db3/CURRENT", &cur).ok());
  cur->Append("definitely not a manifest name");
  cur->Close();
  std::unique_ptr<DB> db;
  Status s = DB::Open(opts, &db);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(DbCorruption, WalDamageKeepsFlushedDataReachable) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/db4";
  opts.write_buffer_size = 4 << 10;
  opts.policy = GrowthPolicyConfig::VTLevelPart(3);
  uint64_t wal_number = 0;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    for (int i = 0; i < 200; i++) {
      db->Put(workload::FormatKey(i, 16), std::string(100, 'w'));
    }
    // Identify the live WAL.
    std::vector<std::string> children;
    env->GetChildren("/db4", &children);
    for (const auto& c : children) {
      uint64_t number;
      std::string suffix;
      if (ParseFileName(c, &number, &suffix) && suffix == "wal") {
        wal_number = std::max(wal_number, number);
      }
    }
  }
  ASSERT_GT(wal_number, 0u);
  // Corrupt the WAL tail: replay stops there; flushed data must survive.
  MutateFile(env.get(), WalFileName("/db4", wal_number),
             [](std::string* c) {
               if (!c->empty()) (*c)[c->size() - 1] ^= 0xFF;
             });
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  std::string value;
  EXPECT_TRUE(db->Get(workload::FormatKey(0, 16), &value).ok());
}

}  // namespace
}  // namespace talus
