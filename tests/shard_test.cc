// Range-sharded frontend (src/shard/, DESIGN.md §3): routing and split
// points, the global sequence watermark, shard_count=1 bit-equality with the
// plain engine, cross-shard snapshot & iterator consistency under concurrent
// writers, and parallel recovery after a simulated crash mid-write.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "env/env.h"
#include "lsm/db.h"
#include "shard/sequence_allocator.h"
#include "shard/shard_manifest.h"
#include "shard/shard_router.h"
#include "shard/sharded_db.h"
#include "util/random.h"
#include "workload/generator.h"

namespace talus {
namespace {

std::string Key(int i) { return workload::FormatKey(i, 16); }

// Split points matching the workload key space (shard i gets [i*per,
// (i+1)*per) of the index space).
std::vector<std::string> SplitPoints(int shards, int num_keys) {
  std::vector<std::string> points;
  for (int i = 1; i < shards; i++) {
    points.push_back(Key(num_keys * i / shards));
  }
  return points;
}

DbOptions Opts(Env* env, const std::string& path) {
  DbOptions opts;
  opts.env = env;
  opts.path = path;
  opts.write_buffer_size = 4 << 10;
  opts.target_file_size = 4 << 10;
  opts.block_size = 1024;
  opts.policy = GrowthPolicyConfig::VTLevelPart(3);
  return opts;
}

// ---- Router units ----------------------------------------------------------

TEST(ShardRouter, RoutesByUpperBound) {
  shard::ShardRouter router;
  ASSERT_TRUE(shard::ShardRouter::Create({"f", "m", "t"}, &router).ok());
  EXPECT_EQ(router.shard_count(), 4u);
  EXPECT_EQ(router.ShardFor("a"), 0u);
  EXPECT_EQ(router.ShardFor("e~"), 0u);
  EXPECT_EQ(router.ShardFor("f"), 1u);  // Boundary belongs to the right.
  EXPECT_EQ(router.ShardFor("g"), 1u);
  EXPECT_EQ(router.ShardFor("m"), 2u);
  EXPECT_EQ(router.ShardFor("s"), 2u);
  EXPECT_EQ(router.ShardFor("t"), 3u);
  EXPECT_EQ(router.ShardFor("zzz"), 3u);
}

TEST(ShardRouter, RejectsBadBoundaries) {
  shard::ShardRouter router;
  EXPECT_FALSE(shard::ShardRouter::Create({"m", "f"}, &router).ok());
  EXPECT_FALSE(shard::ShardRouter::Create({"f", "f"}, &router).ok());
  EXPECT_FALSE(shard::ShardRouter::Create({""}, &router).ok());
  EXPECT_TRUE(shard::ShardRouter::Create({}, &router).ok());
  EXPECT_EQ(router.shard_count(), 1u);
}

TEST(ShardRouter, DefaultBoundariesAreOrdered) {
  const auto b = shard::ShardRouter::DefaultBoundaries(8);
  ASSERT_EQ(b.size(), 7u);
  for (size_t i = 1; i < b.size(); i++) EXPECT_LT(b[i - 1], b[i]);
  shard::ShardRouter router;
  ASSERT_TRUE(shard::ShardRouter::Create(b, &router).ok());
  EXPECT_EQ(router.shard_count(), 8u);
}

// ---- Sequence allocator units ---------------------------------------------

TEST(SequenceAllocator, WatermarkWaitsForGaps) {
  shard::SequenceAllocator alloc;
  const SequenceNumber a = alloc.Claim(3);  // 1..3
  const SequenceNumber b = alloc.Claim(2);  // 4..5
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 4u);
  EXPECT_EQ(alloc.visible(), 0u);
  alloc.Publish(b, 2);  // Out of order: blocked behind the hole at 1..3.
  EXPECT_EQ(alloc.visible(), 0u);
  alloc.Publish(a, 3);
  EXPECT_EQ(alloc.visible(), 5u);
}

TEST(SequenceAllocator, ResetRestartsAfterRecovery) {
  shard::SequenceAllocator alloc;
  alloc.Reset(41);
  EXPECT_EQ(alloc.visible(), 41u);
  const SequenceNumber base = alloc.Claim(1);
  EXPECT_EQ(base, 42u);
  alloc.Publish(base, 1);
  EXPECT_EQ(alloc.visible(), 42u);
}

// ---- Shard manifest --------------------------------------------------------

TEST(ShardManifest, RoundTripsAndPinsSplitPoints) {
  auto env = NewMemEnv();
  ASSERT_TRUE(env->CreateDirIfMissing("/sm").ok());
  shard::ShardManifest manifest;
  manifest.boundaries = {"g", "p"};
  ASSERT_TRUE(shard::WriteShardManifest(env.get(), "/sm", manifest).ok());
  shard::ShardManifest reloaded;
  ASSERT_TRUE(shard::ReadShardManifest(env.get(), "/sm", &reloaded).ok());
  EXPECT_EQ(reloaded.boundaries, manifest.boundaries);
  EXPECT_TRUE(
      shard::ReadShardManifest(env.get(), "/absent", &reloaded).IsNotFound());
}

TEST(ShardManifest, ReopenWithDifferentSplitPointsFails) {
  auto env = NewMemEnv();
  DbOptions opts = Opts(env.get(), "/resplit");
  opts.shard_count = 2;
  opts.shard_split_points = {Key(500)};
  {
    std::unique_ptr<shard::ShardedDB> db;
    ASSERT_TRUE(shard::ShardedDB::Open(opts, &db).ok());
    ASSERT_TRUE(db->Put(Key(1), "v").ok());
  }
  // Same split points reopen fine; different ones must be refused.
  {
    std::unique_ptr<shard::ShardedDB> db;
    ASSERT_TRUE(shard::ShardedDB::Open(opts, &db).ok());
  }
  opts.shard_split_points = {Key(600)};
  std::unique_ptr<shard::ShardedDB> db;
  EXPECT_TRUE(shard::ShardedDB::Open(opts, &db).IsInvalidArgument());
}

// ---- shard_count=1 bit-equality -------------------------------------------

TEST(ShardedDB, SingleShardBitIdenticalToPlainDb) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> plain;
  ASSERT_TRUE(DB::Open(Opts(env.get(), "/plain"), &plain).ok());
  DbOptions sharded_opts = Opts(env.get(), "/sharded");
  sharded_opts.shard_count = 1;
  std::unique_ptr<shard::ShardedDB> sharded;
  ASSERT_TRUE(shard::ShardedDB::Open(sharded_opts, &sharded).ok());

  // A deterministic mixed workload (overwrites, deletes, batches) driven
  // through both engines. Inline mode: flushes/compactions happen at the
  // same points, so every observable output must match bit-for-bit.
  Random rnd(42);
  for (int i = 0; i < 2000; i++) {
    const std::string key = Key(rnd.Uniform(400));
    if (i % 11 == 3) {
      ASSERT_TRUE(plain->Delete(key).ok());
      ASSERT_TRUE(sharded->Delete(key).ok());
    } else if (i % 17 == 5) {
      WriteBatch batch;
      batch.Put(key, "batch-" + std::to_string(i));
      batch.Put(Key(rnd.Uniform(400)), "batch2-" + std::to_string(i));
      ASSERT_TRUE(plain->Write(batch).ok());
      ASSERT_TRUE(sharded->Write(batch).ok());
    } else {
      const std::string value = "v-" + std::to_string(i);
      ASSERT_TRUE(plain->Put(key, value).ok());
      ASSERT_TRUE(sharded->Put(key, value).ok());
    }
  }

  std::vector<std::pair<std::string, std::string>> plain_scan, sharded_scan;
  ASSERT_TRUE(plain->Scan(Slice(), 100000, &plain_scan).ok());
  ASSERT_TRUE(sharded->Scan(Slice(), 100000, &sharded_scan).ok());
  EXPECT_EQ(plain_scan, sharded_scan);

  std::string plain_stats, sharded_stats;
  ASSERT_TRUE(plain->GetProperty("talus.stats", &plain_stats));
  ASSERT_TRUE(sharded->GetProperty("talus.stats", &sharded_stats));
  EXPECT_EQ(plain_stats, sharded_stats);
  std::string plain_levels, sharded_levels;
  ASSERT_TRUE(plain->GetProperty("talus.levels", &plain_levels));
  ASSERT_TRUE(sharded->GetProperty("talus.levels", &sharded_levels));
  EXPECT_EQ(plain_levels, sharded_levels);
}

// ---- Routing and cross-shard reads ----------------------------------------

TEST(ShardedDB, RoutesAndScansAcrossShards) {
  auto env = NewMemEnv();
  DbOptions opts = Opts(env.get(), "/routed");
  opts.shard_count = 4;
  opts.shard_split_points = SplitPoints(4, 1000);
  std::unique_ptr<shard::ShardedDB> db;
  ASSERT_TRUE(shard::ShardedDB::Open(opts, &db).ok());

  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(db->Put(Key(i), "val-" + std::to_string(i)).ok());
  }
  // Every shard owns a quarter of the key space.
  for (size_t s = 0; s < 4; s++) {
    EXPECT_EQ(db->shard(s)->stats().puts, 250u) << "shard " << s;
  }
  // Point reads route back.
  for (int i = 0; i < 1000; i += 97) {
    std::string value;
    ASSERT_TRUE(db->Get(Key(i), &value).ok()) << i;
    EXPECT_EQ(value, "val-" + std::to_string(i));
  }
  // A full scan is ordered and complete across shard boundaries.
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(db->Scan(Slice(), 100000, &out).ok());
  ASSERT_EQ(out.size(), 1000u);
  for (int i = 0; i < 1000; i++) {
    EXPECT_EQ(out[i].first, Key(i));
  }
  // A mid-range scan starts in the right shard and crosses into the next.
  ASSERT_TRUE(db->Scan(Key(240), 20, &out).ok());
  ASSERT_EQ(out.size(), 20u);
  for (int i = 0; i < 20; i++) EXPECT_EQ(out[i].first, Key(240 + i));

  std::string shards_prop;
  ASSERT_TRUE(db->GetProperty("talus.shards", &shards_prop));
  EXPECT_NE(shards_prop.find("shard=0"), std::string::npos);
  EXPECT_NE(shards_prop.find("shard=3"), std::string::npos);
  std::string agg;
  ASSERT_TRUE(db->GetProperty("talus.stats", &agg));
  EXPECT_NE(agg.find("shards=4"), std::string::npos);
  EXPECT_NE(agg.find("puts=1000"), std::string::npos);
}

TEST(ShardedDB, MultiShardBatchIsAtomicInSnapshots) {
  auto env = NewMemEnv();
  DbOptions opts = Opts(env.get(), "/atomic");
  opts.shard_count = 2;
  opts.shard_split_points = SplitPoints(2, 1000);
  std::unique_ptr<shard::ShardedDB> db;
  ASSERT_TRUE(shard::ShardedDB::Open(opts, &db).ok());

  // Pairs (i, 500+i) always live in different shards and are written in
  // one batch; any snapshot must see both sides at the same round.
  for (int round = 0; round < 50; round++) {
    WriteBatch batch;
    batch.Put(Key(7), "r" + std::to_string(round));
    batch.Put(Key(507), "r" + std::to_string(round));
    ASSERT_TRUE(db->Write(batch).ok());
    const Snapshot* snap = db->GetSnapshot();
    std::string left, right;
    ASSERT_TRUE(db->Get(Key(7), &left, snap).ok());
    ASSERT_TRUE(db->Get(Key(507), &right, snap).ok());
    EXPECT_EQ(left, right) << "round " << round;
    db->ReleaseSnapshot(snap);
  }
}

// ---- Cross-shard snapshot consistency under concurrent writers -------------

TEST(ShardedDB, SnapshotConsistencyUnderConcurrentWriters) {
  auto env = NewMemEnv();
  DbOptions opts = Opts(env.get(), "/concurrent");
  opts.write_buffer_size = 16 << 10;
  opts.target_file_size = 16 << 10;
  opts.shard_count = 4;
  opts.shard_split_points = SplitPoints(4, 1000);
  opts.execution_mode = ExecutionMode::kBackground;
  opts.num_background_threads = 3;
  std::unique_ptr<shard::ShardedDB> db;
  ASSERT_TRUE(shard::ShardedDB::Open(opts, &db).ok());

  // 4 writers, each committing multi-shard batches that keep one invariant:
  // keys (w), (250+w), (500+w), (750+w) — one per shard — always carry the
  // same value. Readers snapshot/scan concurrently and must never see a
  // torn batch.
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; w++) {
    writers.emplace_back([&db, w] {
      for (int round = 0; round < 300; round++) {
        WriteBatch batch;
        const std::string value =
            "w" + std::to_string(w) + "-r" + std::to_string(round);
        for (int quarter = 0; quarter < 4; quarter++) {
          batch.Put(Key(quarter * 250 + w), value);
        }
        ASSERT_TRUE(db->Write(batch).ok());
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; r++) {
    readers.emplace_back([&db, &stop, &torn] {
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<std::pair<std::string, std::string>> out;
        if (!db->Scan(Slice(), 100000, &out).ok()) continue;
        std::map<std::string, std::string> by_key(out.begin(), out.end());
        for (int w = 0; w < 4; w++) {
          std::set<std::string> values;
          int present = 0;
          for (int quarter = 0; quarter < 4; quarter++) {
            auto it = by_key.find(Key(quarter * 250 + w));
            if (it == by_key.end()) continue;
            present++;
            values.insert(it->second);
          }
          // All four present with one value, or none yet written.
          if (present != 0 && (present != 4 || values.size() != 1)) {
            torn.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0);

  // Quiesced end state: last round of each writer fully visible.
  ASSERT_TRUE(db->FlushMemTable().ok());
  for (int w = 0; w < 4; w++) {
    std::string value;
    ASSERT_TRUE(db->Get(Key(w), &value).ok());
    EXPECT_EQ(value, "w" + std::to_string(w) + "-r299");
  }
}

TEST(ShardedDB, IteratorPinsOneGlobalSequence) {
  auto env = NewMemEnv();
  DbOptions opts = Opts(env.get(), "/iterpin");
  opts.shard_count = 2;
  opts.shard_split_points = SplitPoints(2, 1000);
  std::unique_ptr<shard::ShardedDB> db;
  ASSERT_TRUE(shard::ShardedDB::Open(opts, &db).ok());

  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(db->Put(Key(i), "before").ok());
  }
  auto iter = db->NewIterator();
  // Writes landing after the pin — including cross-shard batches — must be
  // invisible to the already-created iterator.
  for (int i = 0; i < 1000; i += 3) {
    WriteBatch batch;
    batch.Put(Key(i), "after");
    batch.Put(Key(999 - i), "after");
    ASSERT_TRUE(db->Write(batch).ok());
  }
  size_t seen = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    EXPECT_EQ(iter->value().ToString(), "before");
    seen++;
  }
  ASSERT_TRUE(iter->status().ok());
  EXPECT_EQ(seen, 1000u);
}

// ---- Parallel recovery after a simulated crash -----------------------------

TEST(ShardedDB, ParallelRecoveryAfterCrashMidWrite) {
  auto env = NewMemEnv();
  DbOptions opts = Opts(env.get(), "/crashed");
  opts.shard_count = 4;
  opts.shard_split_points = SplitPoints(4, 1000);
  {
    std::unique_ptr<shard::ShardedDB> db;
    ASSERT_TRUE(shard::ShardedDB::Open(opts, &db).ok());
    for (int i = 0; i < 1000; i++) {
      ASSERT_TRUE(db->Put(Key(i), "durable-" + std::to_string(i)).ok());
    }
    // Crash: abandon the store with the memtables unflushed. MemEnv file
    // contents survive the DB objects, so reopening replays per-shard WALs
    // (in parallel on the shared pool).
  }
  std::unique_ptr<shard::ShardedDB> db;
  ASSERT_TRUE(shard::ShardedDB::Open(opts, &db).ok());
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(db->Scan(Slice(), 100000, &out).ok());
  ASSERT_EQ(out.size(), 1000u);
  for (int i = 0; i < 1000; i++) {
    EXPECT_EQ(out[i].first, Key(i));
    EXPECT_EQ(out[i].second, "durable-" + std::to_string(i));
  }
  // The global sequence authority resumed past everything recovered: new
  // writes commit, become visible, and snapshot consistently.
  ASSERT_TRUE(db->Put(Key(1), "post-crash").ok());
  std::string value;
  ASSERT_TRUE(db->Get(Key(1), &value).ok());
  EXPECT_EQ(value, "post-crash");
  const Snapshot* snap = db->GetSnapshot();
  ASSERT_TRUE(db->Get(Key(1), &value, snap).ok());
  EXPECT_EQ(value, "post-crash");
  db->ReleaseSnapshot(snap);
}

}  // namespace
}  // namespace talus
