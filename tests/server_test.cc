// Network service layer (src/server/, DESIGN.md §8, docs/PROTOCOL.md):
// wire framing units, request/response round-trips through a real TCP
// loopback server, pipelined ordering, partial- and malformed-frame
// handling (clean error status, no crash), concurrent clients (TSan),
// the HTTP /metrics endpoint, and graceful-shutdown drain semantics.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "env/env.h"
#include "lsm/write_batch.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "shard/sharded_db.h"
#include "util/coding.h"
#include "workload/generator.h"

namespace talus {
namespace {

using server::Client;
using server::Server;
using server::ServerOptions;
namespace wire = server::wire;

std::string Key(int i) { return workload::FormatKey(i, 16); }

DbOptions Opts(Env* env, const std::string& path, int shards = 2) {
  DbOptions opts;
  opts.env = env;
  opts.path = path;
  opts.write_buffer_size = 16 << 10;
  opts.target_file_size = 16 << 10;
  opts.block_size = 1024;
  opts.policy = GrowthPolicyConfig::VTLevelPart(3);
  opts.execution_mode = ExecutionMode::kBackground;
  opts.num_background_threads = 2;
  opts.shard_count = shards;
  return opts;
}

// A running loopback server over a fresh ShardedDB on a MemEnv.
struct TestServer {
  std::unique_ptr<Env> env;
  std::unique_ptr<shard::ShardedDB> db;
  std::unique_ptr<Server> server;

  explicit TestServer(ServerOptions sopts = ServerOptions(), int shards = 2) {
    env = NewMemEnv();
    EXPECT_TRUE(shard::ShardedDB::Open(Opts(env.get(), "/srv", shards), &db)
                    .ok());
    server = std::make_unique<Server>(db.get(), sopts);
    const Status s = server->Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  uint16_t port() const { return server->port(); }
};

// Raw blocking TCP socket for protocol-level (mis)behavior tests.
struct RawConn {
  int fd = -1;
  explicit RawConn(uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }
  void Send(const std::string& bytes) {
    ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
  }
  // Reads until `n` bytes or EOF; returns what arrived.
  std::string ReadN(size_t n) {
    std::string out;
    while (out.size() < n) {
      char chunk[4096];
      const ssize_t r =
          ::read(fd, chunk, std::min(sizeof(chunk), n - out.size()));
      if (r <= 0) break;
      out.append(chunk, static_cast<size_t>(r));
    }
    return out;
  }
  std::string ReadAll() {
    std::string out;
    char chunk[4096];
    ssize_t r;
    while ((r = ::read(fd, chunk, sizeof(chunk))) > 0) {
      out.append(chunk, static_cast<size_t>(r));
    }
    return out;
  }
  // One blocking read of whatever is available; empty on EOF.
  std::string ReadSome() {
    char chunk[4096];
    const ssize_t r = ::read(fd, chunk, sizeof(chunk));
    if (r <= 0) return std::string();
    return std::string(chunk, static_cast<size_t>(r));
  }
};

// Incrementally reads response frames off a raw connection, buffering
// partial bytes between calls. Returns false on EOF or a torn frame.
struct FrameReader {
  explicit FrameReader(RawConn& c) : conn(c) {}
  RawConn& conn;
  std::string buf;
  bool Next(wire::Frame* f) {
    for (;;) {
      size_t consumed = 0;
      const wire::DecodeResult r =
          wire::DecodeFrame(buf.data(), buf.size(), 64 << 20, f, &consumed);
      if (r == wire::DecodeResult::kFrame) {
        buf.erase(0, consumed);
        return true;
      }
      if (r != wire::DecodeResult::kNeedMore) return false;
      const std::string more = conn.ReadSome();
      if (more.empty()) return false;
      buf += more;
    }
  }
};

// Decodes one response frame from the head of `bytes`; returns consumed.
size_t DecodeResponse(const std::string& bytes, wire::Frame* f) {
  size_t consumed = 0;
  EXPECT_EQ(wire::DecodeFrame(bytes.data(), bytes.size(), 64 << 20, f,
                              &consumed),
            wire::DecodeResult::kFrame);
  return consumed;
}

// ---- Wire units ------------------------------------------------------------

TEST(Wire, FrameRoundTrip) {
  std::string buf;
  wire::AppendFrame(&buf, static_cast<uint8_t>(wire::Opcode::kGet), 42,
                    "payload-bytes");
  wire::Frame f;
  size_t consumed = 0;
  ASSERT_EQ(wire::DecodeFrame(buf.data(), buf.size(), 1 << 20, &f, &consumed),
            wire::DecodeResult::kFrame);
  EXPECT_EQ(consumed, buf.size());
  EXPECT_EQ(f.op, static_cast<uint8_t>(wire::Opcode::kGet));
  EXPECT_EQ(f.request_id, 42u);
  EXPECT_EQ(f.payload, "payload-bytes");
}

TEST(Wire, DecodeReportsNeedMoreOnEveryPrefix) {
  std::string buf;
  wire::AppendFrame(&buf, static_cast<uint8_t>(wire::Opcode::kPut), 7,
                    "kv");
  for (size_t n = 0; n < buf.size(); n++) {
    wire::Frame f;
    size_t consumed = 0;
    EXPECT_EQ(wire::DecodeFrame(buf.data(), n, 1 << 20, &f, &consumed),
              wire::DecodeResult::kNeedMore)
        << "prefix " << n;
  }
}

TEST(Wire, DecodeRejectsBadMagicVersionFlagsAndOversize) {
  std::string good;
  wire::AppendFrame(&good, static_cast<uint8_t>(wire::Opcode::kPing), 1,
                    Slice());
  wire::Frame f;
  size_t consumed;

  std::string bad = good;
  bad[4] = 0x00;  // magic
  EXPECT_EQ(wire::DecodeFrame(bad.data(), bad.size(), 1 << 20, &f, &consumed),
            wire::DecodeResult::kBadMagic);

  bad = good;
  bad[5] = 9;  // version
  EXPECT_EQ(wire::DecodeFrame(bad.data(), bad.size(), 1 << 20, &f, &consumed),
            wire::DecodeResult::kBadVersion);

  bad = good;
  bad[7] = 1;  // flags
  EXPECT_EQ(wire::DecodeFrame(bad.data(), bad.size(), 1 << 20, &f, &consumed),
            wire::DecodeResult::kBadFlags);

  bad = good;
  EncodeFixed32(&bad[0], 64 << 20);  // len over the cap
  EXPECT_EQ(wire::DecodeFrame(bad.data(), bad.size(), 1 << 20, &f, &consumed),
            wire::DecodeResult::kTooLarge);

  bad = good;
  EncodeFixed32(&bad[0], 4);  // len below the header size
  EXPECT_EQ(wire::DecodeFrame(bad.data(), bad.size(), 1 << 20, &f, &consumed),
            wire::DecodeResult::kBadMagic);
}

// ---- Round trips through a real server -------------------------------------

TEST(ServerRoundTrip, PutGetDeleteScanPropertyPing) {
  TestServer ts;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.port()).ok());
  ASSERT_TRUE(client.Ping().ok());

  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(client.Put(Key(i), "v" + std::to_string(i)).ok());
  }
  std::string value;
  ASSERT_TRUE(client.Get(Key(7), &value).ok());
  EXPECT_EQ(value, "v7");

  EXPECT_TRUE(client.Delete(Key(7)).ok());
  EXPECT_TRUE(client.Get(Key(7), &value).IsNotFound());

  // Scan crosses the shard boundary and observes one consistent snapshot.
  std::vector<std::pair<std::string, std::string>> entries;
  ASSERT_TRUE(client.Scan(Key(0), 1000, &entries).ok());
  EXPECT_EQ(entries.size(), 49u);
  EXPECT_EQ(entries[0].first, Key(0));
  EXPECT_EQ(entries[0].second, "v0");

  // WriteBatch opcode: atomic multi-op commit.
  WriteBatch batch;
  batch.Put(Key(100), "batched");
  batch.Delete(Key(1));
  ASSERT_TRUE(client.Write(batch).ok());
  ASSERT_TRUE(client.Get(Key(100), &value).ok());
  EXPECT_EQ(value, "batched");
  EXPECT_TRUE(client.Get(Key(1), &value).IsNotFound());

  std::string stats;
  ASSERT_TRUE(client.GetProperty("talus.stats", &stats).ok());
  EXPECT_NE(stats.find("puts"), std::string::npos);
  EXPECT_TRUE(client.GetProperty("talus.nope", &stats).IsNotFound());
}

TEST(ServerRoundTrip, ValuesLargerThanOneReadChunk) {
  TestServer ts;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.port()).ok());
  const std::string big(300 << 10, 'x');  // Spans several 64 KiB reads.
  ASSERT_TRUE(client.Put(Key(1), big).ok());
  std::string value;
  ASSERT_TRUE(client.Get(Key(1), &value).ok());
  EXPECT_EQ(value, big);
}

TEST(ServerPipelined, OrderedResponsesAndCoalescedCommits) {
  TestServer ts;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.port()).ok());

  // Pipeline 64 puts + 64 gets without waiting; responses must come back
  // in request order with matching ids and values.
  std::vector<uint64_t> put_ids, get_ids;
  for (int i = 0; i < 64; i++) {
    put_ids.push_back(client.SendPut(Key(i), "p" + std::to_string(i)));
  }
  for (int i = 0; i < 64; i++) get_ids.push_back(client.SendGet(Key(i)));
  for (int i = 0; i < 64; i++) {
    EXPECT_TRUE(client.Wait(put_ids[i], nullptr).ok());
  }
  for (int i = 0; i < 64; i++) {
    Client::Result r;
    ASSERT_TRUE(client.Wait(get_ids[i], &r).ok());
    EXPECT_EQ(r.value, "p" + std::to_string(i));
  }
  EXPECT_EQ(client.pending(), 0u);

  // The pipelined put run coalesced into WriteBatch commits.
  const server::ServerStats stats = ts.server->stats();
  EXPECT_GT(stats.coalesced_batches, 0u);
  EXPECT_GT(stats.coalesced_ops, stats.coalesced_batches);
  EXPECT_GE(stats.requests_total, 128u);
}

TEST(ServerPipelined, OutOfOrderWaitBuffersResponses) {
  TestServer ts;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.port()).ok());
  ASSERT_TRUE(client.Put(Key(3), "v3").ok());

  const uint64_t a = client.SendGet(Key(3));
  const uint64_t b = client.SendGet(Key(999));
  const uint64_t c = client.SendPing();
  // Wait newest-first: earlier responses get stashed, nothing is lost.
  EXPECT_TRUE(client.Wait(c, nullptr).ok());
  EXPECT_TRUE(client.Wait(b, nullptr).IsNotFound());
  Client::Result r;
  EXPECT_TRUE(client.Wait(a, &r).ok());
  EXPECT_EQ(r.value, "v3");
  EXPECT_EQ(client.pending(), 0u);
}

// ---- Partial and malformed frames ------------------------------------------

TEST(ServerFraming, PartialFramesDribbledByteByByte) {
  TestServer ts;
  RawConn raw(ts.port());
  std::string req;
  std::string payload;
  wire::PutLp(&payload, Key(1));
  wire::PutLp(&payload, "dribbled");
  wire::AppendFrame(&req, static_cast<uint8_t>(wire::Opcode::kPut), 5,
                    payload);
  for (char b : req) {
    raw.Send(std::string(1, b));
  }
  FrameReader reader(raw);
  wire::Frame resp;
  ASSERT_TRUE(reader.Next(&resp));
  EXPECT_EQ(resp.op, static_cast<uint8_t>(wire::StatusCode::kOk));
  EXPECT_EQ(resp.request_id, 5u);

  std::string value;
  ASSERT_TRUE(ts.db->Get(Key(1), &value).ok());
  EXPECT_EQ(value, "dribbled");
}

TEST(ServerFraming, BadMagicAnswersErrorFrameAndCloses) {
  TestServer ts;
  RawConn raw(ts.port());
  std::string junk;
  PutFixed32(&junk, 16);      // Plausible len...
  junk += std::string(16, '?');  // ...but '?' is not the magic byte.
  raw.Send(junk);
  const std::string resp_bytes = raw.ReadAll();  // Until server closes.
  ASSERT_GE(resp_bytes.size(), 4 + wire::kHeaderLen);
  wire::Frame resp;
  DecodeResponse(resp_bytes, &resp);
  EXPECT_EQ(resp.op, static_cast<uint8_t>(wire::StatusCode::kBadRequest));
  EXPECT_EQ(resp.request_id, 0u);
  EXPECT_GT(ts.server->stats().bad_frames, 0u);
}

TEST(ServerFraming, BadVersionAnswersBadVersionAndCloses) {
  TestServer ts;
  RawConn raw(ts.port());
  std::string req;
  wire::AppendFrame(&req, static_cast<uint8_t>(wire::Opcode::kPing), 1,
                    Slice());
  req[5] = 9;  // Corrupt the version byte.
  raw.Send(req);
  const std::string resp_bytes = raw.ReadAll();
  ASSERT_GE(resp_bytes.size(), 4 + wire::kHeaderLen);
  wire::Frame resp;
  DecodeResponse(resp_bytes, &resp);
  EXPECT_EQ(resp.op, static_cast<uint8_t>(wire::StatusCode::kBadVersion));
}

TEST(ServerFraming, OversizeLengthCloses) {
  TestServer ts;
  RawConn raw(ts.port());
  std::string req;
  PutFixed32(&req, 512 << 20);  // Frame claiming 512 MB.
  req += std::string(16, 'x');
  raw.Send(req);
  const std::string resp_bytes = raw.ReadAll();
  ASSERT_GE(resp_bytes.size(), 4 + wire::kHeaderLen);
  wire::Frame resp;
  DecodeResponse(resp_bytes, &resp);
  EXPECT_EQ(resp.op, static_cast<uint8_t>(wire::StatusCode::kBadRequest));
}

TEST(ServerFraming, ResponsesForEarlierRequestsPrecedeFatalError) {
  TestServer ts;
  RawConn raw(ts.port());
  // A valid ping, then garbage: the ping's OK response must arrive before
  // the error frame, then the connection closes.
  std::string req;
  wire::AppendFrame(&req, static_cast<uint8_t>(wire::Opcode::kPing), 11,
                    Slice());
  req += "\xff\xff\xff\xff garbage";
  raw.Send(req);
  const std::string resp_bytes = raw.ReadAll();
  wire::Frame first, second;
  const size_t consumed = DecodeResponse(resp_bytes, &first);
  DecodeResponse(resp_bytes.substr(consumed), &second);
  EXPECT_EQ(first.request_id, 11u);
  EXPECT_EQ(first.op, static_cast<uint8_t>(wire::StatusCode::kOk));
  EXPECT_EQ(second.request_id, 0u);
  EXPECT_NE(second.op, static_cast<uint8_t>(wire::StatusCode::kOk));
}

TEST(ServerFraming, MalformedPayloadFailsRequestNotConnection) {
  TestServer ts;
  RawConn raw(ts.port());
  // GET whose inner lp length overruns the payload: kBadRequest for that
  // request only; a follow-up ping on the same connection still works.
  std::string bad_payload;
  PutFixed32(&bad_payload, 1000);  // Claims 1000 key bytes; sends 3.
  bad_payload += "abc";
  std::string req;
  wire::AppendFrame(&req, static_cast<uint8_t>(wire::Opcode::kGet), 21,
                    bad_payload);
  wire::AppendFrame(&req, static_cast<uint8_t>(wire::Opcode::kPing), 22,
                    Slice());
  raw.Send(req);

  FrameReader reader(raw);
  wire::Frame first, second;
  ASSERT_TRUE(reader.Next(&first));
  EXPECT_EQ(first.request_id, 21u);
  EXPECT_EQ(first.op, static_cast<uint8_t>(wire::StatusCode::kBadRequest));
  ASSERT_TRUE(reader.Next(&second)) << "connection closed before pong";
  EXPECT_EQ(second.request_id, 22u);
  EXPECT_EQ(second.op, static_cast<uint8_t>(wire::StatusCode::kOk));
}

TEST(ServerFraming, UnknownOpcodeAnswersNotSupportedKeepsConnection) {
  TestServer ts;
  RawConn raw(ts.port());
  std::string req;
  wire::AppendFrame(&req, 0x7F, 31, Slice());
  wire::AppendFrame(&req, static_cast<uint8_t>(wire::Opcode::kPing), 32,
                    Slice());
  raw.Send(req);
  FrameReader reader(raw);
  wire::Frame first, second;
  ASSERT_TRUE(reader.Next(&first));
  EXPECT_EQ(first.request_id, 31u);
  EXPECT_EQ(first.op, static_cast<uint8_t>(wire::StatusCode::kNotSupported));
  ASSERT_TRUE(reader.Next(&second)) << "connection closed after bad opcode";
  EXPECT_EQ(second.request_id, 32u);
  EXPECT_EQ(second.op, static_cast<uint8_t>(wire::StatusCode::kOk));
}

TEST(ServerFraming, EmptyKeyAnswersInvalidArgument) {
  TestServer ts;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.port()).ok());
  EXPECT_TRUE(client.Put("", "value").IsInvalidArgument());
  EXPECT_TRUE(client.Ping().ok());  // Connection survives.
}

// ---- HTTP /metrics ---------------------------------------------------------

TEST(ServerHttp, MetricsEndpointServesPrometheusText) {
  TestServer ts;
  {
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", ts.port()).ok());
    for (int i = 0; i < 10; i++) {
      ASSERT_TRUE(client.Put(Key(i), "v").ok());
    }
  }
  RawConn raw(ts.port());
  raw.Send("GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n");
  const std::string resp = raw.ReadAll();
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("# TYPE"), std::string::npos);
  EXPECT_NE(resp.find("talus_puts_total"), std::string::npos);
  EXPECT_NE(resp.find("talus_server_requests_total"), std::string::npos);

  RawConn raw404(ts.port());
  raw404.Send("GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(raw404.ReadAll().find("404"), std::string::npos);

  RawConn rawhealth(ts.port());
  rawhealth.Send("GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(rawhealth.ReadAll().find("200 OK"), std::string::npos);
}

// ---- Concurrency (TSan target) ---------------------------------------------

TEST(ServerConcurrency, ManyClientsManyWorkers) {
  ServerOptions sopts;
  sopts.worker_threads = 4;
  TestServer ts(sopts, 4);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Client client;
      if (!client.Connect("127.0.0.1", ts.port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kOpsPerThread; i++) {
        const int k = t * kOpsPerThread + i;
        if (!client.Put(Key(k), "t" + std::to_string(t)).ok()) {
          failures.fetch_add(1);
          return;
        }
        if (i % 3 == 0) {
          std::string value;
          if (!client.Get(Key(t * kOpsPerThread), &value).ok()) {
            failures.fetch_add(1);
            return;
          }
        }
        if (i % 50 == 0) {
          std::vector<std::pair<std::string, std::string>> entries;
          if (!client.Scan(Key(0), 10, &entries).ok()) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Every thread's writes are all present.
  Client verify;
  ASSERT_TRUE(verify.Connect("127.0.0.1", ts.port()).ok());
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kOpsPerThread; i++) {
      std::string value;
      ASSERT_TRUE(verify.Get(Key(t * kOpsPerThread + i), &value).ok());
      EXPECT_EQ(value, "t" + std::to_string(t));
    }
  }
}

// ---- Graceful shutdown -----------------------------------------------------

TEST(ServerShutdown, StopDrainsCompletedWorkAndFlushes) {
  auto env = NewMemEnv();
  DbOptions dopts = Opts(env.get(), "/drain");
  std::unique_ptr<shard::ShardedDB> db;
  ASSERT_TRUE(shard::ShardedDB::Open(dopts, &db).ok());
  auto server = std::make_unique<Server>(db.get(), ServerOptions());
  ASSERT_TRUE(server->Start().ok());
  const uint16_t port = server->port();

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  std::vector<uint64_t> ids;
  for (int i = 0; i < 100; i++) {
    ids.push_back(client.SendPut(Key(i), "durable"));
  }
  for (uint64_t id : ids) ASSERT_TRUE(client.Wait(id, nullptr).ok());

  server->Stop();
  EXPECT_FALSE(server->running());
  // flush_on_shutdown flushed the memtables: every shard's active memtable
  // was persisted, so a reopened store serves the data without WAL replay.
  server.reset();
  db.reset();
  ASSERT_TRUE(shard::ShardedDB::Open(dopts, &db).ok());
  for (int i = 0; i < 100; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(Key(i), &value).ok()) << i;
    EXPECT_EQ(value, "durable");
  }
}

TEST(ServerShutdown, StopWhileRequestsInFlightAnswersWhatItAccepted) {
  TestServer ts;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ts.port()).ok());

  // Race a pipelined burst against Stop(). Drain semantics: every request
  // the server received before the stop gets a response; the connection
  // then closes. The client must observe only OK responses followed by a
  // clean close — never a hang, a crash, or a torn frame.
  std::vector<uint64_t> ids;
  for (int i = 0; i < 200; i++) {
    ids.push_back(client.SendPut(Key(i), "inflight"));
  }
  ASSERT_TRUE(client.Flush().ok());
  // Ensure the burst reached the server before stopping.
  std::thread stopper([&] { ts.server->Stop(); });

  int answered = 0;
  for (uint64_t id : ids) {
    const Status s = client.Wait(id, nullptr);
    if (!s.ok()) break;  // Connection closed mid-drain: the rest are gone.
    answered++;
  }
  stopper.join();
  // Every key whose put was answered OK must be durable in the store.
  for (int i = 0; i < answered; i++) {
    std::string value;
    ASSERT_TRUE(ts.db->Get(Key(i), &value).ok()) << i;
    EXPECT_EQ(value, "inflight");
  }
  EXPECT_FALSE(ts.server->running());
}

TEST(ServerShutdown, NewConnectionsRefusedAfterStop) {
  TestServer ts;
  const uint16_t port = ts.port();
  ts.server->Stop();
  Client late;
  EXPECT_FALSE(late.Connect("127.0.0.1", port).ok() && late.Ping().ok());
}

TEST(ServerLifecycle, StartRejectsBadAddressAndDoubleStart) {
  auto env = NewMemEnv();
  std::unique_ptr<shard::ShardedDB> db;
  ASSERT_TRUE(shard::ShardedDB::Open(Opts(env.get(), "/ls"), &db).ok());
  ServerOptions bad;
  bad.listen_addr = "not-an-address";
  Server s1(db.get(), bad);
  EXPECT_FALSE(s1.Start().ok());

  Server s2(db.get(), ServerOptions());
  ASSERT_TRUE(s2.Start().ok());
  EXPECT_FALSE(s2.Start().ok());
  s2.Stop();
}

}  // namespace
}  // namespace talus
