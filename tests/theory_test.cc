// Property tests for the paper's theory: Lemma 4.1, Theorem 4.2 /
// Lemma 9.4, Lemma 5.1's simulation counterpart, and Lemma 5.2.
#include <gtest/gtest.h>

#include "theory/binomial.h"
#include "theory/optimal_dp.h"
#include "theory/schemes.h"

namespace talus {
namespace theory {
namespace {

TEST(Binomial, SmallValues) {
  EXPECT_EQ(Binomial(0, 0), 1u);
  EXPECT_EQ(Binomial(5, 0), 1u);
  EXPECT_EQ(Binomial(5, 1), 5u);
  EXPECT_EQ(Binomial(5, 2), 10u);
  EXPECT_EQ(Binomial(5, 5), 1u);
  EXPECT_EQ(Binomial(4, 5), 0u);
  EXPECT_EQ(Binomial(10, 3), 120u);
  EXPECT_EQ(Binomial(52, 5), 2598960u);
}

TEST(Binomial, PascalIdentity) {
  for (uint64_t n = 1; n < 40; n++) {
    for (uint64_t k = 1; k <= n; k++) {
      EXPECT_EQ(Binomial(n, k), Binomial(n - 1, k - 1) + Binomial(n - 1, k));
    }
  }
}

TEST(Binomial, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(Binomial(1000, 500), kBinomialInf);
  EXPECT_EQ(Binomial(68, 34), kBinomialInf);  // ~2.8e19 > 2^64.
  EXPECT_LT(Binomial(64, 32), kBinomialInf);  // ~1.8e18 < 2^64.
}

TEST(Binomial, FindMBrackets) {
  for (uint64_t l = 1; l <= 6; l++) {
    for (uint64_t n = 1; n <= 2000; n += 7) {
      const uint64_t m = FindM(n, l);
      EXPECT_LE(Binomial(m, l), n) << "n=" << n << " l=" << l;
      EXPECT_GT(Binomial(m + 1, l), n) << "n=" << n << " l=" << l;
    }
  }
}

TEST(Binomial, FindKIsSmallest) {
  for (uint64_t l = 1; l <= 6; l++) {
    for (uint64_t n = 2; n <= 2000; n += 13) {
      const uint64_t k = FindK(n, l);
      EXPECT_GE(Binomial(k + l - 1, l), n);
      if (k > 1) {
        EXPECT_LT(Binomial(k - 1 + l - 1, l), n);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Lemma 4.1: with counters initialized to k, Algorithm 2 drains all
// counters to zero after exactly C(k+ℓ-1, ℓ) buffer flushes.
// ---------------------------------------------------------------------------

struct KL {
  uint64_t k;
  int l;
};

class Lemma41Test : public ::testing::TestWithParam<KL> {};

TEST_P(Lemma41Test, CountersDrainAtBinomial) {
  const auto [k, l] = GetParam();
  const uint64_t expected = Binomial(k + l - 1, l);
  auto result = SimulateHorizontalTiering(expected + 5, l, k);
  EXPECT_EQ(result.drained_at, expected) << "k=" << k << " l=" << l;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Lemma41Test,
    ::testing::Values(KL{1, 1}, KL{5, 1}, KL{1, 2}, KL{3, 2}, KL{7, 2},
                      KL{2, 3}, KL{4, 3}, KL{6, 3}, KL{3, 4}, KL{5, 4},
                      KL{2, 5}, KL{4, 5}, KL{8, 2}, KL{10, 3}, KL{12, 2},
                      KL{2, 6}, KL{3, 6}));

// ---------------------------------------------------------------------------
// Lemma 9.4: the DP optimum τ(n, ℓ) equals the closed form for all n.
// ---------------------------------------------------------------------------

class ClosedFormTest : public ::testing::TestWithParam<int> {};

TEST_P(ClosedFormTest, DpMatchesClosedForm) {
  const int l = GetParam();
  OptimalReadCostDp dp;
  for (uint64_t n = 1; n <= 300; n++) {
    EXPECT_EQ(dp.Cost(n, l), TieringReadCostClosedForm(n, l))
        << "n=" << n << " l=" << l;
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, ClosedFormTest, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Theorem 4.2: Algorithm 2's schedule achieves the DP optimum at the
// binomial boundaries N = C(k+ℓ-1, ℓ)·B, and never beats it elsewhere.
// ---------------------------------------------------------------------------

class Theorem42Test : public ::testing::TestWithParam<KL> {};

TEST_P(Theorem42Test, Algorithm2IsOptimalAtBoundary) {
  const auto [k, l] = GetParam();
  const uint64_t n = Binomial(k + l - 1, l);
  ASSERT_LT(n, 2000u) << "test parameter too large";
  auto sim = SimulateHorizontalTiering(n, l, k);
  OptimalReadCostDp dp;
  EXPECT_EQ(sim.read_cost, dp.Cost(n, l)) << "k=" << k << " l=" << l;
  EXPECT_EQ(sim.read_cost, TieringReadCostClosedForm(n, l));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem42Test,
    ::testing::Values(KL{1, 2}, KL{2, 2}, KL{3, 2}, KL{5, 2}, KL{10, 2},
                      KL{20, 2}, KL{2, 3}, KL{3, 3}, KL{5, 3}, KL{8, 3},
                      KL{2, 4}, KL{3, 4}, KL{5, 4}, KL{2, 5}, KL{3, 5},
                      KL{1, 6}, KL{2, 6}));

TEST(Theorem42, Algorithm2NeverBeatsTheDp) {
  OptimalReadCostDp dp;
  for (int l = 2; l <= 4; l++) {
    for (uint64_t n = 2; n <= 120; n++) {
      const uint64_t k = FindK(n, l);
      auto sim = SimulateHorizontalTiering(n, l, k);
      EXPECT_GE(sim.read_cost, dp.Cost(n, l)) << "n=" << n << " l=" << l;
    }
  }
}

// The strongest form of Theorem 4.2: Algorithm 2's compaction schedule is
// not merely cost-equal to the optimum — it is the SAME sequence of
// (flush index, target level) events the DP extracts, except for one
// zero-cost full cascade at the very last flush (the counters drain at
// flush n, scheduling a compaction that no lookup ever observes).
TEST(Theorem42, Algorithm2SequenceIsTheDpSequence) {
  for (int l = 2; l <= 4; l++) {
    for (uint64_t k = 1; k <= 5; k++) {
      const uint64_t n = Binomial(k + l - 1, l);
      if (n < 2 || n > 300) continue;
      auto sim = SimulateHorizontalTiering(n, l, k);
      OptimalReadCostDp dp;
      auto seq = dp.Sequence(n, l);
      ASSERT_EQ(sim.events.size(), seq.size() + 1)
          << "l=" << l << " k=" << k;
      for (size_t i = 0; i < seq.size(); i++) {
        EXPECT_EQ(sim.events[i].flush_index, seq[i].flush_index)
            << "l=" << l << " k=" << k << " event " << i;
        EXPECT_EQ(sim.events[i].to_level, seq[i].to_level)
            << "l=" << l << " k=" << k << " event " << i;
      }
      // The extra event is the zero-cost drain cascade at flush n.
      EXPECT_EQ(sim.events.back().flush_index, n);
      EXPECT_EQ(sim.events.back().to_level, l);
    }
  }
}

TEST(Theorem42, DpSequenceCostConsistent) {
  // The extracted optimal sequence must contain C(m, l)-ish compactions and
  // reproduce the optimal cost when replayed.
  OptimalReadCostDp dp;
  const uint64_t n = 56;  // C(8,3) boundary for l=3 with k=6.
  const int l = 3;
  auto seq = dp.Sequence(n, l);
  // Replay: maintain per-level run birth times.
  std::vector<std::vector<uint64_t>> runs(l);
  uint64_t cost = 0;
  size_t next_event = 0;
  for (uint64_t t = 1; t <= n; t++) {
    runs[0].push_back(t);
    while (next_event < seq.size() && seq[next_event].flush_index == t) {
      const int target = seq[next_event].to_level;  // 1-based.
      for (int lvl = 0; lvl + 1 < target; lvl++) {
        for (uint64_t birth : runs[lvl]) cost += t - birth;
        runs[lvl].clear();
      }
      runs[target - 1].push_back(t);
      next_event++;
    }
  }
  for (int lvl = 0; lvl < l; lvl++) {
    for (uint64_t birth : runs[lvl]) cost += n - birth;
  }
  EXPECT_EQ(cost, dp.Cost(n, l));
}

// ---------------------------------------------------------------------------
// Lemma 5.2. The closed form is the OPTIMAL total write cost of Problem 2
// under the paper's §9.4 accounting: a flush costs D1-after-flush; a
// compaction (I, 1, l2) costs Σ_{j≤l2} D_j. We certify it three ways:
//   1. brute force over all compaction schedules == closed form (small n);
//   2. the engine's footnote-6 merged-cascade simulator never exceeds the
//      closed form (merging "slightly reduces write amplification");
//   3. the two agree exactly at binomial boundaries n = C(m, ℓ).
// ---------------------------------------------------------------------------

namespace {

// Exhaustive minimum write cost over all schedules. After each flush we may
// run one compaction from level 1 to any level l2 (multi-level ops subsume
// chains). Unmerged accounting per the paper's Problem 2.
uint64_t BruteForceWriteCost(std::vector<uint64_t> sizes, uint64_t flushes_left,
                             int levels) {
  if (flushes_left == 0) return 0;
  // Flush: merge buffer into level 1.
  sizes[0] += 1;
  const uint64_t flush_cost = sizes[0];
  // Option: no compaction.
  uint64_t best = BruteForceWriteCost(sizes, flushes_left - 1, levels);
  // Option: compact levels [1..l2-1] into l2.
  for (int l2 = 2; l2 <= levels; l2++) {
    std::vector<uint64_t> next = sizes;
    uint64_t moved = 0;
    for (int j = 0; j < l2 - 1; j++) {
      moved += next[j];
      next[j] = 0;
    }
    if (moved == 0) continue;
    const uint64_t cost = moved + next[l2 - 1];
    next[l2 - 1] += moved;
    best = std::min(best,
                    cost + BruteForceWriteCost(next, flushes_left - 1, levels));
  }
  return flush_cost + best;
}

uint64_t BruteForceWriteCost(uint64_t n, int levels) {
  return BruteForceWriteCost(std::vector<uint64_t>(levels, 0), n, levels);
}

}  // namespace

TEST(Lemma52, ClosedFormIsTheOptimum) {
  for (int l = 1; l <= 3; l++) {
    const uint64_t max_n = l == 3 ? 9 : 12;
    for (uint64_t n = 1; n <= max_n; n++) {
      EXPECT_EQ(BruteForceWriteCost(n, l), LevelingWriteCostClosedForm(n, l))
          << "n=" << n << " l=" << l;
    }
  }
}

class Lemma52Test : public ::testing::TestWithParam<int> {};

TEST_P(Lemma52Test, MergedSimulatorNeverExceedsClosedForm) {
  const int l = GetParam();
  for (uint64_t n = 1; n <= 500; n++) {
    auto sim = SimulateHorizontalLeveling(n, l);
    EXPECT_LE(sim.write_cost, LevelingWriteCostClosedForm(n, l))
        << "n=" << n << " l=" << l;
  }
}

TEST_P(Lemma52Test, ExactAtBinomialBoundaries) {
  const int l = GetParam();
  for (uint64_t m = l; m <= static_cast<uint64_t>(l) + 8; m++) {
    const uint64_t n = Binomial(m, l);
    if (n < 1 || n > 3000) continue;
    auto sim = SimulateHorizontalLeveling(n, l);
    EXPECT_EQ(sim.write_cost, LevelingWriteCostClosedForm(n, l))
        << "n=" << n << " l=" << l;
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, Lemma52Test,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Lemma52, HandWorkedExample) {
  // Worked by hand in the design notes: ℓ=2, n∈{3,6} are boundaries.
  EXPECT_EQ(SimulateHorizontalLeveling(3, 2).write_cost, 5u);
  EXPECT_EQ(SimulateHorizontalLeveling(6, 2).write_cost, 14u);
}

// ---------------------------------------------------------------------------
// Figure 5's running example: ℓ=2, k=3.
// ---------------------------------------------------------------------------

TEST(Figure5, RunningExample) {
  auto sim = SimulateHorizontalTiering(6, 2, 3);
  // Compactions after flushes 3, 5 and 6 (Figure 5).
  ASSERT_EQ(sim.events.size(), 3u);
  EXPECT_EQ(sim.events[0].flush_index, 3u);
  EXPECT_EQ(sim.events[1].flush_index, 5u);
  EXPECT_EQ(sim.events[2].flush_index, 6u);
  EXPECT_EQ(sim.drained_at, 6u);  // C(4,2) = 6 (Lemma 4.1).
  EXPECT_EQ(sim.read_cost, TieringReadCostClosedForm(6, 2));
}

// ---------------------------------------------------------------------------
// §5.3 Eq. 6: δ(α).
// ---------------------------------------------------------------------------

TEST(SkewDelta, Thresholds) {
  EXPECT_EQ(SkewDelta(0.0), 0u);
  EXPECT_EQ(SkewDelta(0.3), 0u);   // 0.3/0.7 ≈ 0.43 < 1.
  EXPECT_EQ(SkewDelta(0.5), 1u);   // budget 1: δ(δ+1)/2 = 1 ≤ 1.
  EXPECT_EQ(SkewDelta(0.75), 2u);  // budget 3: 2·3/2 = 3 ≤ 3 < 3·4/2.
  EXPECT_EQ(SkewDelta(0.9), 3u);   // budget 9: 3·4/2 = 6 ≤ 9 < 4·5/2.
}

TEST(SkewDelta, Monotone) {
  uint64_t prev = 0;
  for (double alpha = 0.0; alpha < 0.99; alpha += 0.01) {
    const uint64_t d = SkewDelta(alpha);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(SkewDelta, DefinitionHolds) {
  for (double alpha = 0.01; alpha < 0.99; alpha += 0.007) {
    const uint64_t d = SkewDelta(alpha);
    const double budget = alpha / (1 - alpha);
    EXPECT_LE(static_cast<double>(d * (d + 1)) / 2.0, budget);
    const uint64_t d1 = d + 1;
    EXPECT_GT(static_cast<double>(d1 * (d1 + 1)) / 2.0, budget);
  }
}

// Skewed workloads should compact less often: larger δ defers first-level
// compactions, reducing write cost when duplicates slow level growth.
TEST(SkewDelta, LargerDeltaFewerCompactions) {
  auto base = SimulateHorizontalLeveling(500, 3, 0);
  auto relaxed = SimulateHorizontalLeveling(500, 3, 2);
  EXPECT_LT(relaxed.events.size(), base.events.size());
}

}  // namespace
}  // namespace theory
}  // namespace talus
