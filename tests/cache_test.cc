#include "cache/lru_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace talus {
namespace {

std::shared_ptr<void> Value(int v) {
  return std::make_shared<int>(v);
}

int Get(const std::shared_ptr<void>& p) {
  return *std::static_pointer_cast<int>(p);
}

TEST(LruCache, InsertLookup) {
  LruCache cache(1024);
  cache.Insert("a", Value(1), 100);
  cache.Insert("b", Value(2), 100);
  auto a = cache.Lookup("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(Get(a), 1);
  EXPECT_EQ(cache.Lookup("missing"), nullptr);
  EXPECT_EQ(cache.usage(), 200u);
}

TEST(LruCache, ReplaceUpdatesCharge) {
  LruCache cache(1024);
  cache.Insert("a", Value(1), 100);
  cache.Insert("a", Value(2), 300);
  EXPECT_EQ(cache.usage(), 300u);
  EXPECT_EQ(Get(cache.Lookup("a")), 2);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(300);
  cache.Insert("a", Value(1), 100);
  cache.Insert("b", Value(2), 100);
  cache.Insert("c", Value(3), 100);
  // Touch "a" so "b" is the LRU victim.
  cache.Lookup("a");
  cache.Insert("d", Value(4), 100);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_NE(cache.Lookup("d"), nullptr);
  EXPECT_LE(cache.usage(), 300u);
}

TEST(LruCache, OversizedEntryEvictsEverything) {
  LruCache cache(250);
  cache.Insert("a", Value(1), 100);
  cache.Insert("big", Value(2), 400);
  // The oversized entry cannot fit: the cache evicts down to it, and since
  // it alone exceeds capacity, the cache drains fully (usage may exceed
  // capacity only while the entry is the sole resident).
  EXPECT_EQ(cache.Lookup("a"), nullptr);
}

TEST(LruCache, EraseAndPrefix) {
  LruCache cache(10000);
  cache.Insert("file1/block1", Value(1), 10);
  cache.Insert("file1/block2", Value(2), 10);
  cache.Insert("file2/block1", Value(3), 10);
  cache.Erase("file1/block1");
  EXPECT_EQ(cache.Lookup("file1/block1"), nullptr);
  cache.EraseByPrefix("file1/");
  EXPECT_EQ(cache.Lookup("file1/block2"), nullptr);
  EXPECT_NE(cache.Lookup("file2/block1"), nullptr);
  EXPECT_EQ(cache.usage(), 10u);
}

TEST(LruCache, DisabledCacheIsNoop) {
  LruCache cache(0);
  cache.Insert("a", Value(1), 10);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.usage(), 0u);
}

TEST(LruCache, HitMissCounters) {
  LruCache cache(1000);
  cache.Insert("a", Value(1), 10);
  cache.Lookup("a");
  cache.Lookup("a");
  cache.Lookup("b");
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCache, ValueOutlivesEviction) {
  LruCache cache(100);
  cache.Insert("a", Value(42), 100);
  auto held = cache.Lookup("a");
  cache.Insert("b", Value(2), 100);  // Evicts "a".
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(Get(held), 42);  // Shared ownership keeps the value alive.
}

}  // namespace
}  // namespace talus
