// Differential property tests: every growth policy must expose identical
// user-visible semantics under randomized op streams, across a sweep of
// engine geometries (buffer size, value size, block size). The oracle is a
// std::map replay; policies are additionally cross-checked against each
// other by comparing full-scan digests.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "env/env.h"
#include "lsm/db.h"
#include "util/random.h"
#include "workload/generator.h"

namespace talus {
namespace {

struct Geometry {
  const char* name;
  uint64_t buffer;
  size_t block;
  size_t value_size;
  int key_space;
};

class GeometrySweepTest : public ::testing::TestWithParam<Geometry> {};

std::vector<GrowthPolicyConfig> SweepPolicies() {
  return {
      GrowthPolicyConfig::VTLevelPart(2),   // Aggressive ratio: deep trees.
      GrowthPolicyConfig::VTTierFull(2),
      GrowthPolicyConfig::HRLevel(2),       // Minimal level count.
      GrowthPolicyConfig::HRTier(4, 1 << 20),
      GrowthPolicyConfig::Vertiorizon(3),
      GrowthPolicyConfig::LazyLeveling(2, 3, true),
      GrowthPolicyConfig::Universal(),
  };
}

TEST_P(GeometrySweepTest, AllPoliciesAgreeWithOracle) {
  const Geometry g = GetParam();

  // One deterministic op stream shared by every policy.
  struct OpRec {
    bool is_delete;
    std::string key;
    std::string value;
  };
  std::vector<OpRec> ops;
  std::map<std::string, std::string> oracle;
  {
    Random rnd(777);
    for (int i = 0; i < 2500; i++) {
      OpRec op;
      op.is_delete = rnd.OneIn(5);
      op.key = workload::FormatKey(rnd.Uniform(g.key_space), 16);
      if (!op.is_delete) {
        op.value = workload::MakeValue(i, i, g.value_size);
        oracle[op.key] = op.value;
      } else {
        oracle.erase(op.key);
      }
      ops.push_back(std::move(op));
    }
  }

  std::string reference_digest;
  for (const auto& policy : SweepPolicies()) {
    auto env = NewMemEnv();
    DbOptions opts;
    opts.env = env.get();
    opts.path = "/sweep";
    opts.write_buffer_size = g.buffer;
    opts.target_file_size = g.buffer;
    opts.block_size = g.block;
    opts.policy = policy;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok()) << g.name;

    for (const auto& op : ops) {
      if (op.is_delete) {
        ASSERT_TRUE(db->Delete(op.key).ok());
      } else {
        ASSERT_TRUE(db->Put(op.key, op.value).ok());
      }
    }

    // Full scan digest must be identical across all policies.
    std::string digest;
    auto iter = db->NewIterator();
    auto oit = oracle.begin();
    size_t n = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++oit, ++n) {
      ASSERT_NE(oit, oracle.end())
          << g.name << " policy " << db->policy()->name();
      EXPECT_EQ(iter->key().ToString(), oit->first);
      EXPECT_EQ(iter->value().ToString(), oit->second);
      digest += iter->key().ToString();
      digest.push_back('|');
    }
    EXPECT_EQ(oit, oracle.end());
    if (reference_digest.empty()) {
      reference_digest = digest;
    } else {
      EXPECT_EQ(digest, reference_digest)
          << g.name << " policy " << db->policy()->name();
    }

    // Random point probes.
    Random rnd(g.key_space);
    for (int i = 0; i < 200; i++) {
      const std::string key =
          workload::FormatKey(rnd.Uniform(g.key_space), 16);
      std::string value;
      Status s = db->Get(key, &value);
      auto it = oracle.find(key);
      if (it == oracle.end()) {
        EXPECT_TRUE(s.IsNotFound()) << key;
      } else {
        ASSERT_TRUE(s.ok()) << key;
        EXPECT_EQ(value, it->second);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweepTest,
    ::testing::Values(
        Geometry{"tiny_buffer", 1 << 10, 512, 64, 120},
        Geometry{"small_values", 4 << 10, 1024, 16, 400},
        Geometry{"large_values", 8 << 10, 4096, 900, 150},
        Geometry{"single_entry_files", 512, 256, 300, 60},
        Geometry{"wide_keyspace", 4 << 10, 1024, 120, 2000}),
    [](const ::testing::TestParamInfo<Geometry>& info) {
      return info.param.name;
    });

// Lemma 5.1 in the flesh: the live HR-Tier engine's lookups-per-run count
// should track the model's run-count predictions, on average.
TEST(EngineMatchesModel, HorizontalTieringRunCounts) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/model";
  opts.write_buffer_size = 4 << 10;
  opts.target_file_size = 4 << 10;
  opts.block_size = 1024;
  opts.bloom_bits_per_key = 0;  // No filters: probes == runs covering key.
  opts.policy = GrowthPolicyConfig::HRTier(3, 2 << 20);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());

  Random rnd(5);
  for (int i = 0; i < 6000; i++) {
    ASSERT_TRUE(db->Put(workload::FormatKey(rnd.Uniform(100000), 16),
                        std::string(240, 'v'))
                    .ok());
  }
  // Probe random present-or-absent keys; each lookup probes at most one file
  // per run whose range covers the key, i.e. ≈ #runs for dense key spaces.
  const uint64_t probes_before = db->stats().runs_probed;
  const uint64_t gets_before = db->stats().gets;
  for (int i = 0; i < 2000; i++) {
    std::string value;
    db->Get(workload::FormatKey(rnd.Uniform(100000), 16), &value);
  }
  const double observed =
      static_cast<double>(db->stats().runs_probed - probes_before) /
      static_cast<double>(db->stats().gets - gets_before);
  const double structural = static_cast<double>(db->current_version().TotalRuns());
  // Observed probes per lookup can be below the run count (sparse coverage)
  // but never above it.
  EXPECT_LE(observed, structural + 1e-9);
  EXPECT_GT(observed, structural * 0.3);
}

// The §5.4 dynamic filter layout must never produce false negatives and
// should spend fewer bits on near-empty horizontal levels than static.
TEST(DynamicFilterLayout, EndToEndCorrectness) {
  for (FilterLayout layout :
       {FilterLayout::kStatic, FilterLayout::kMonkey, FilterLayout::kDynamic}) {
    auto env = NewMemEnv();
    DbOptions opts;
    opts.env = env.get();
    opts.path = "/fl";
    opts.write_buffer_size = 4 << 10;
    opts.target_file_size = 4 << 10;
    opts.block_size = 1024;
    opts.filter_layout = layout;
    opts.policy = GrowthPolicyConfig::Vertiorizon(3);
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());

    std::map<std::string, std::string> model;
    Random rnd(71);
    for (int i = 0; i < 3000; i++) {
      std::string key = workload::FormatKey(rnd.Uniform(700), 16);
      std::string value = "flv" + std::to_string(i);
      ASSERT_TRUE(db->Put(key, value).ok());
      model[key] = value;
    }
    for (const auto& [k, v] : model) {
      std::string value;
      ASSERT_TRUE(db->Get(k, &value).ok())
          << "layout " << static_cast<int>(layout) << " key " << k;
      EXPECT_EQ(value, v);
    }
  }
}

}  // namespace
}  // namespace talus
