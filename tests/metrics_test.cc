#include "metrics/throughput.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>

#include "env/env.h"
#include "lsm/db.h"
#include "util/histogram.h"
#include "workload/generator.h"

namespace talus {
namespace {

TEST(ThroughputMeter, AverageOverWholeRun) {
  metrics::ThroughputMeter meter(10);
  for (int i = 0; i <= 100; i++) {
    meter.RecordOp(i * 2.0);  // One op every 2 clock units.
  }
  EXPECT_NEAR(meter.AverageThroughput(), 0.5, 1e-9);
}

TEST(ThroughputMeter, WorstCaseCatchesStall) {
  metrics::ThroughputMeter meter(10);
  double clock = 0;
  for (int i = 0; i < 50; i++) {
    clock += 1.0;
    meter.RecordOp(clock);
  }
  clock += 500.0;  // A long compaction stall.
  meter.RecordOp(clock);
  for (int i = 0; i < 50; i++) {
    clock += 1.0;
    meter.RecordOp(clock);
  }
  // Average barely notices; worst-case window does.
  EXPECT_GT(meter.AverageThroughput(), 0.15);
  EXPECT_LT(meter.WorstCaseThroughput(), 0.02);
  EXPECT_GT(meter.WorstCaseThroughput(), 0.0);
}

TEST(ThroughputMeter, UniformLoadWorstEqualsAverage) {
  metrics::ThroughputMeter meter(100);
  for (int i = 0; i <= 10000; i++) {
    meter.RecordOp(static_cast<double>(i));
  }
  EXPECT_NEAR(meter.WorstCaseThroughput(), meter.AverageThroughput(), 1e-6);
}

TEST(ThroughputMeter, FewOpsDegenerate) {
  metrics::ThroughputMeter meter(1000);
  EXPECT_EQ(meter.AverageThroughput(), 0.0);
  EXPECT_EQ(meter.WorstCaseThroughput(), 0.0);
  meter.RecordOp(1.0);
  EXPECT_EQ(meter.WorstCaseThroughput(), 0.0);
  meter.RecordOp(2.0);
  EXPECT_GT(meter.AverageThroughput(), 0.0);
}

TEST(Histogram, BasicStatistics) {
  Histogram h;
  for (int i = 1; i <= 100; i++) {
    h.Add(i);
  }
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 100.0);
  EXPECT_NEAR(h.Average(), 50.5, 1e-9);
  EXPECT_NEAR(h.Median(), 50, 10);
  EXPECT_GT(h.Percentile(99), h.Percentile(50));
  EXPECT_GT(h.StandardDeviation(), 0);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 50; i++) a.Add(10);
  for (int i = 0; i < 50; i++) b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 100u);
  EXPECT_DOUBLE_EQ(a.Min(), 10.0);
  EXPECT_DOUBLE_EQ(a.Max(), 1000.0);
  EXPECT_NEAR(a.Average(), 505.0, 1e-9);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.Add(42);
  h.Clear();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Average(), 0.0);
}

TEST(Histogram, EmptyIsZeroEverywhere) {
  Histogram h;
  // No sentinel leakage: an untouched histogram reports 0, not the
  // internal min/max initializers.
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99.9), 0.0);
  EXPECT_DOUBLE_EQ(h.Median(), 0.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Average(), 0.0);
}

TEST(Histogram, MergeWithEmptySides) {
  Histogram a, empty;
  a.Add(5);
  a.Add(500);
  // Empty into populated: a no-op; min/max survive.
  a.Merge(empty);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_DOUBLE_EQ(a.Min(), 5.0);
  EXPECT_DOUBLE_EQ(a.Max(), 500.0);
  // Populated into empty: adopts the source's min/max exactly.
  Histogram b;
  b.Merge(a);
  EXPECT_EQ(b.Count(), 2u);
  EXPECT_DOUBLE_EQ(b.Min(), 5.0);
  EXPECT_DOUBLE_EQ(b.Max(), 500.0);
  // Empty into empty stays empty.
  Histogram c;
  c.Merge(empty);
  EXPECT_EQ(c.Count(), 0u);
  EXPECT_DOUBLE_EQ(c.Min(), 0.0);
}

TEST(Histogram, BucketLayoutIsTheSharedSourceOfTruth) {
  // BucketFor and BucketUpperBound agree: a value lands in the first
  // bucket whose (exclusive) upper limit exceeds it.
  for (double v : {0.0, 1.0, 2.0, 99.0, 1e6, 1e17}) {
    const int b = Histogram::BucketFor(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, Histogram::kNumBuckets);
    EXPECT_LT(v, Histogram::BucketUpperBound(b)) << v;
    if (b > 0) {
      EXPECT_GE(v, Histogram::BucketUpperBound(b - 1)) << v;
    }
  }
  // The last bucket is a catch-all for anything beyond the layout.
  EXPECT_EQ(Histogram::BucketFor(1e200), Histogram::kNumBuckets - 1);
}

TEST(Histogram, MergeRawMatchesEquivalentAdds) {
  // MergeRaw (the obs::LatencyRecorder snapshot path) must agree with the
  // same observations recorded through Add().
  uint64_t counts[Histogram::kNumBuckets] = {};
  Histogram direct;
  double sum = 0, mn = 1e30, mx = 0;
  uint64_t num = 0;
  for (int v : {3, 17, 17, 250, 9000}) {
    counts[Histogram::BucketFor(v)]++;
    direct.Add(v);
    sum += v;
    mn = std::min<double>(mn, v);
    mx = std::max<double>(mx, v);
    num++;
  }
  Histogram raw;
  raw.MergeRaw(counts, num, sum, mn, mx);
  EXPECT_EQ(raw.Count(), direct.Count());
  EXPECT_DOUBLE_EQ(raw.Min(), direct.Min());
  EXPECT_DOUBLE_EQ(raw.Max(), direct.Max());
  EXPECT_DOUBLE_EQ(raw.Sum(), direct.Sum());
  EXPECT_DOUBLE_EQ(raw.Median(), direct.Median());
  EXPECT_DOUBLE_EQ(raw.Percentile(99), direct.Percentile(99));

  // num == 0 is ignored outright — even with garbage summary stats.
  Histogram untouched;
  untouched.MergeRaw(counts, 0, 123.0, -5.0, 1e9);
  EXPECT_EQ(untouched.Count(), 0u);
  EXPECT_DOUBLE_EQ(untouched.Min(), 0.0);
  EXPECT_DOUBLE_EQ(untouched.Max(), 0.0);
}

// ---------------------------------------------- Cache counters in GetProperty

// Extracts the integer following "<token>=" in a talus.stats dump.
uint64_t StatField(const std::string& stats, const std::string& token) {
  const std::string needle = " " + token + "=";
  size_t pos = stats.find(needle);
  EXPECT_NE(pos, std::string::npos) << token << " missing in: " << stats;
  if (pos == std::string::npos) return 0;
  return std::strtoull(stats.c_str() + pos + needle.size(), nullptr, 10);
}

TEST(CacheCounters, SurfacedInTalusStats) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/db";
  opts.write_buffer_size = 4 << 10;
  opts.target_file_size = 4 << 10;
  opts.block_size = 1024;
  opts.block_cache_bytes = 64 << 10;
  opts.table_cache_open_files = 64;
  opts.policy = GrowthPolicyConfig::VTTierFull(3);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());

  for (int i = 0; i < 600; i++) {
    ASSERT_TRUE(
        db->Put(workload::FormatKey(i, 16), std::string(64, 'v')).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  // Two passes over the on-disk keys: the second one hits both caches.
  for (int pass = 0; pass < 2; pass++) {
    for (int i = 0; i < 600; i += 7) {
      std::string value;
      ASSERT_TRUE(db->Get(workload::FormatKey(i, 16), &value).ok());
    }
  }

  std::string stats;
  ASSERT_TRUE(db->GetProperty("talus.stats", &stats));
  EXPECT_GT(StatField(stats, "bc_misses"), 0u);
  EXPECT_GT(StatField(stats, "bc_hits"), 0u);
  EXPECT_GT(StatField(stats, "bc_usage"), 0u);
  EXPECT_EQ(StatField(stats, "bc_cap"), opts.block_cache_bytes);
  EXPECT_GT(StatField(stats, "tc_opens"), 0u);
  EXPECT_GT(StatField(stats, "tc_hits"), 0u);
  EXPECT_GT(StatField(stats, "tc_open_readers"), 0u);
  EXPECT_EQ(StatField(stats, "tc_cap"), opts.table_cache_open_files);
  // Counter coherence: every open came from a miss.
  EXPECT_LE(StatField(stats, "tc_opens"), StatField(stats, "tc_misses"));

  // The structured table-cache stats agree with the property surface.
  const auto tc = db->table_cache()->GetStats();
  EXPECT_EQ(tc.hits, StatField(stats, "tc_hits"));
  EXPECT_EQ(tc.misses, StatField(stats, "tc_misses"));
  EXPECT_LE(tc.open_readers, tc.capacity);
}

TEST(CacheCounters, FlushReadBytesSeparatedFromCompactionReads) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/db";
  opts.write_buffer_size = 4 << 10;
  opts.target_file_size = 4 << 10;
  opts.block_size = 1024;
  // Leveling: every flush after the first merges with L0's run, so flush
  // merges read existing SSTs.
  opts.policy = GrowthPolicyConfig::VTLevelFull(3);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  for (int i = 0; i < 800; i++) {
    ASSERT_TRUE(
        db->Put(workload::FormatKey(i % 200, 16), std::string(64, 'v')).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());

  std::string stats;
  ASSERT_TRUE(db->GetProperty("talus.stats", &stats));
  // Flush-merge reads are charged to the flush counter, not compaction's.
  EXPECT_GT(StatField(stats, "flush_read"), 0u);
  EXPECT_EQ(db->stats().flush_bytes_read, StatField(stats, "flush_read"));
  EXPECT_EQ(db->stats().compaction_bytes_read,
            StatField(stats, "comp_read"));
  EXPECT_EQ(db->stats().compaction_conflicts,
            StatField(stats, "conflicts"));
}

// --------------------------------------- Subcompaction counters (talus.exec)

TEST(SubcompactionCounters, SurfacedInTalusExec) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/db";
  opts.write_buffer_size = 4 << 10;
  opts.target_file_size = 4 << 10;
  opts.block_size = 1024;
  opts.policy = GrowthPolicyConfig::VTTierFull(3);
  opts.execution_mode = ExecutionMode::kBackground;
  opts.num_background_threads = 2;
  opts.max_subcompactions = 4;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());

  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(
        db->Put(workload::FormatKey(i % 700, 16), std::string(64, 'v')).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  ASSERT_TRUE(db->CompactAll().ok());

  std::string exec_info;
  ASSERT_TRUE(db->GetProperty("talus.exec", &exec_info));
  const size_t start = exec_info.find("subcompactions{");
  ASSERT_NE(start, std::string::npos) << exec_info;
  // Parse inside the subcompactions block only: the scheduler's job
  // counters use the same field names.
  const std::string sub = exec_info.substr(start);
  auto field = [&sub](const std::string& token) -> uint64_t {
    const std::string needle = token + "=";
    size_t pos = sub.find(needle);
    EXPECT_NE(pos, std::string::npos) << token << " missing in: " << sub;
    if (pos == std::string::npos) return 0;
    return std::strtoull(sub.c_str() + pos + needle.size(), nullptr, 10);
  };
  EXPECT_GT(field("scheduled"), 0u);
  EXPECT_GT(field("compactions"), 0u);
  // Tiering flushes bypass the executor: no flush merges here.
  EXPECT_EQ(field("flush_merges"), 0u);
  // Quiesced: everything scheduled has completed, nothing is running.
  EXPECT_EQ(field("scheduled"), field("completed"));
  EXPECT_EQ(field("active"), 0u);
  // Per-compaction fanout histogram: at least one subcompaction per
  // compaction.
  EXPECT_GE(field("scheduled"), field("compactions"));
  EXPECT_NE(sub.find("fanout_avg="), std::string::npos);
  EXPECT_NE(sub.find("fanout_p50="), std::string::npos);
  EXPECT_NE(sub.find("fanout_max="), std::string::npos);
}

TEST(CacheCounters, BlockCacheEvictionsCounted) {
  LruCache cache(64);  // Tiny: every second insert evicts.
  cache.Insert("a", std::make_shared<int>(1), 48);
  cache.Insert("b", std::make_shared<int>(2), 48);
  cache.Insert("c", std::make_shared<int>(3), 48);
  EXPECT_GE(cache.evictions(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  cache.Lookup("c");
  cache.Lookup("nope");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

}  // namespace
}  // namespace talus
