#include "metrics/throughput.h"

#include <gtest/gtest.h>

#include "util/histogram.h"

namespace talus {
namespace {

TEST(ThroughputMeter, AverageOverWholeRun) {
  metrics::ThroughputMeter meter(10);
  for (int i = 0; i <= 100; i++) {
    meter.RecordOp(i * 2.0);  // One op every 2 clock units.
  }
  EXPECT_NEAR(meter.AverageThroughput(), 0.5, 1e-9);
}

TEST(ThroughputMeter, WorstCaseCatchesStall) {
  metrics::ThroughputMeter meter(10);
  double clock = 0;
  for (int i = 0; i < 50; i++) {
    clock += 1.0;
    meter.RecordOp(clock);
  }
  clock += 500.0;  // A long compaction stall.
  meter.RecordOp(clock);
  for (int i = 0; i < 50; i++) {
    clock += 1.0;
    meter.RecordOp(clock);
  }
  // Average barely notices; worst-case window does.
  EXPECT_GT(meter.AverageThroughput(), 0.15);
  EXPECT_LT(meter.WorstCaseThroughput(), 0.02);
  EXPECT_GT(meter.WorstCaseThroughput(), 0.0);
}

TEST(ThroughputMeter, UniformLoadWorstEqualsAverage) {
  metrics::ThroughputMeter meter(100);
  for (int i = 0; i <= 10000; i++) {
    meter.RecordOp(static_cast<double>(i));
  }
  EXPECT_NEAR(meter.WorstCaseThroughput(), meter.AverageThroughput(), 1e-6);
}

TEST(ThroughputMeter, FewOpsDegenerate) {
  metrics::ThroughputMeter meter(1000);
  EXPECT_EQ(meter.AverageThroughput(), 0.0);
  EXPECT_EQ(meter.WorstCaseThroughput(), 0.0);
  meter.RecordOp(1.0);
  EXPECT_EQ(meter.WorstCaseThroughput(), 0.0);
  meter.RecordOp(2.0);
  EXPECT_GT(meter.AverageThroughput(), 0.0);
}

TEST(Histogram, BasicStatistics) {
  Histogram h;
  for (int i = 1; i <= 100; i++) {
    h.Add(i);
  }
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 100.0);
  EXPECT_NEAR(h.Average(), 50.5, 1e-9);
  EXPECT_NEAR(h.Median(), 50, 10);
  EXPECT_GT(h.Percentile(99), h.Percentile(50));
  EXPECT_GT(h.StandardDeviation(), 0);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 50; i++) a.Add(10);
  for (int i = 0; i < 50; i++) b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 100u);
  EXPECT_DOUBLE_EQ(a.Min(), 10.0);
  EXPECT_DOUBLE_EQ(a.Max(), 1000.0);
  EXPECT_NEAR(a.Average(), 505.0, 1e-9);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.Add(42);
  h.Clear();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Average(), 0.0);
}

}  // namespace
}  // namespace talus
