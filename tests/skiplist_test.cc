#include "mem/skiplist.h"

#include <gtest/gtest.h>

#include <set>

#include "util/arena.h"
#include "util/random.h"

namespace talus {
namespace {

struct IntComparator {
  int operator()(const uint64_t& a, const uint64_t& b) const {
    if (a < b) return -1;
    if (a > b) return +1;
    return 0;
  }
};

using IntSkipList = SkipList<uint64_t, IntComparator>;

TEST(SkipList, EmptyList) {
  Arena arena;
  IntSkipList list(IntComparator(), &arena);
  EXPECT_FALSE(list.Contains(10));
  IntSkipList::Iterator iter(&list);
  EXPECT_FALSE(iter.Valid());
  iter.SeekToFirst();
  EXPECT_FALSE(iter.Valid());
  iter.SeekToLast();
  EXPECT_FALSE(iter.Valid());
  iter.Seek(100);
  EXPECT_FALSE(iter.Valid());
}

TEST(SkipList, InsertAndLookup) {
  Arena arena;
  IntSkipList list(IntComparator(), &arena);
  Random rnd(2000);
  std::set<uint64_t> keys;
  for (int i = 0; i < 2000; i++) {
    const uint64_t key = rnd.Uniform(5000);
    if (keys.insert(key).second) {
      list.Insert(key);
    }
  }

  for (uint64_t i = 0; i < 5000; i++) {
    EXPECT_EQ(list.Contains(i), keys.count(i) > 0) << i;
  }

  // Forward iteration matches the ordered set.
  IntSkipList::Iterator iter(&list);
  iter.SeekToFirst();
  for (uint64_t key : keys) {
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(iter.key(), key);
    iter.Next();
  }
  EXPECT_FALSE(iter.Valid());

  // Backward iteration.
  iter.SeekToLast();
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(iter.key(), *it);
    iter.Prev();
  }
  EXPECT_FALSE(iter.Valid());
}

TEST(SkipList, SeekSemantics) {
  Arena arena;
  IntSkipList list(IntComparator(), &arena);
  for (uint64_t k : {10, 20, 30, 40, 50}) list.Insert(k);

  IntSkipList::Iterator iter(&list);
  iter.Seek(25);
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.key(), 30u);
  iter.Seek(30);
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.key(), 30u);
  iter.Seek(51);
  EXPECT_FALSE(iter.Valid());
  iter.Seek(5);
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.key(), 10u);
}

TEST(SkipList, LargeSequentialInsert) {
  Arena arena;
  IntSkipList list(IntComparator(), &arena);
  for (uint64_t i = 0; i < 50000; i++) {
    list.Insert(i * 2);
  }
  EXPECT_TRUE(list.Contains(0));
  EXPECT_TRUE(list.Contains(99998));
  EXPECT_FALSE(list.Contains(99999));
  EXPECT_FALSE(list.Contains(12345));
  EXPECT_TRUE(list.Contains(12346));
}

}  // namespace
}  // namespace talus
