#include "tuning/vertical_cost_model.h"

#include <gtest/gtest.h>

#include "filter/bloom.h"

namespace talus {
namespace tuning {
namespace {

VerticalCostModel Model(double T, uint64_t n = 1024) {
  VerticalCostModel m;
  m.size_ratio = T;
  m.bloom_fpr = 0.1;
  m.page_entries = 4.0;
  m.data_buffers = n;
  return m;
}

TEST(VerticalCostModel, LevelCountLogarithmic) {
  EXPECT_EQ(Model(2, 1024).Levels(), 10);
  EXPECT_EQ(Model(4, 1024).Levels(), 5);
  EXPECT_EQ(Model(32, 1024).Levels(), 2);
  EXPECT_GE(Model(10, 2).Levels(), 1);
}

TEST(VerticalCostModel, LevelingVsTieringDirections) {
  const auto m = Model(6);
  // Tiering reads cost more (T runs per level); writes cost less.
  EXPECT_GT(m.PointLookupCost(HorizontalMerge::kTiering),
            m.PointLookupCost(HorizontalMerge::kLeveling));
  EXPECT_LT(m.UpdateCost(HorizontalMerge::kTiering),
            m.UpdateCost(HorizontalMerge::kLeveling));
}

TEST(VerticalCostModel, RatioTradesReadsForWrites) {
  // Growing T: fewer levels ⇒ cheaper leveled reads, costlier leveled
  // writes per level but fewer levels — classic concave trade-off. At the
  // extremes the directions are unambiguous.
  const auto small = Model(2);
  const auto large = Model(32);
  EXPECT_GT(small.PointLookupCost(HorizontalMerge::kLeveling),
            large.PointLookupCost(HorizontalMerge::kLeveling));
  EXPECT_LT(small.UpdateCost(HorizontalMerge::kLeveling),
            large.UpdateCost(HorizontalMerge::kLeveling));
}

TEST(VerticalCostModel, BestVerticalRespondsToMix) {
  WorkloadMix writes;
  writes.updates = 0.99;
  writes.point_lookups = 0.01;
  const auto w = BestVertical(0.1, 4.0, 1024, writes);
  EXPECT_EQ(w.merge, HorizontalMerge::kTiering);

  WorkloadMix reads;
  reads.updates = 0.01;
  reads.point_lookups = 0.99;
  const auto r = BestVertical(0.1, 4.0, 1024, reads);
  EXPECT_EQ(r.merge, HorizontalMerge::kLeveling);
}

// The paper's model-space claim behind Figure 10(a): at any point-lookup
// budget, the horizontal family offers write cost at most the vertical
// family's (Bentley–Saxe / Theorem 4.2 optimality).
class FrontierDominanceTest : public ::testing::TestWithParam<double> {};

TEST_P(FrontierDominanceTest, HorizontalDominatesVertical) {
  const double budget = GetParam();
  const double f = BloomFalsePositiveRate(5.0);
  const uint64_t n = 1024;

  double best_vertical = -1;
  for (double T : {2.0, 3.0, 4.0, 6.0, 8.0, 10.0, 16.0, 32.0, 64.0}) {
    VerticalCostModel m;
    m.size_ratio = T;
    m.bloom_fpr = f;
    m.page_entries = 4.0;
    m.data_buffers = n;
    for (auto merge :
         {HorizontalMerge::kLeveling, HorizontalMerge::kTiering}) {
      if (m.PointLookupCost(merge) <= budget) {
        const double w = m.UpdateCost(merge);
        if (best_vertical < 0 || w < best_vertical) best_vertical = w;
      }
    }
  }
  if (best_vertical < 0) {
    GTEST_SKIP() << "no vertical design meets the budget";
  }

  HorizontalCostModel h;
  h.capacity_buffers = n;
  h.bloom_fpr = f;
  h.page_entries = 4.0;
  double best_horizontal = -1;
  for (int l = 2; l <= 128; l++) {
    for (auto merge :
         {HorizontalMerge::kLeveling, HorizontalMerge::kTiering}) {
      if (h.PointLookupCost(merge, l) <= budget) {
        const double w = h.UpdateCost(merge, l);
        if (best_horizontal < 0 || w < best_horizontal) best_horizontal = w;
      }
    }
  }
  ASSERT_GE(best_horizontal, 0.0);
  EXPECT_LE(best_horizontal, best_vertical + 1e-9) << "budget " << budget;
}

INSTANTIATE_TEST_SUITE_P(Budgets, FrontierDominanceTest,
                         ::testing::Values(0.2, 0.3, 0.5, 0.8, 1.2, 2.0, 3.0,
                                           5.0));

}  // namespace
}  // namespace tuning
}  // namespace talus
