// Point-read fast path (DESIGN.md §7): Block::PointGet must position on
// exactly the entry Block::Iter::Seek does — fuzzed over key shapes,
// restart intervals, and corrupt inputs — stay safe under concurrent use,
// and leave the amp counters bit-identical to the legacy iterator path.
#include "format/block.h"
#include "format/block_builder.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "env/env.h"
#include "lsm/db.h"
#include "lsm/dbformat.h"
#include "util/random.h"
#include "workload/generator.h"

namespace talus {
namespace {

// Random user key, biased toward sharing prefixes with `prev` so the
// delta-decode and prefix-skip paths get real coverage; occasionally long
// enough to overflow PointGetContext's inline buffer.
std::string RandomUserKey(Random* rnd, const std::string& prev) {
  std::string key;
  if (!prev.empty() && rnd->Uniform(100) < 60) {
    key = prev.substr(0, rnd->Uniform(static_cast<int>(prev.size()) + 1));
  }
  int extra = 1 + rnd->Uniform(12);
  if (rnd->Uniform(100) < 5) extra += 230 + rnd->Uniform(120);  // Heap path.
  for (int i = 0; i < extra; i++) {
    key.push_back(static_cast<char>('a' + rnd->Uniform(8)));
  }
  return key;
}

struct FuzzBlock {
  std::vector<std::string> ikeys;   // Sorted internal keys.
  std::vector<std::string> values;
  std::string contents;
};

FuzzBlock BuildInternalBlock(Random* rnd, int num_keys, int restart_interval) {
  std::set<std::string> users;
  std::string prev;
  while (static_cast<int>(users.size()) < num_keys) {
    prev = RandomUserKey(rnd, prev);
    users.insert(prev);
  }
  FuzzBlock fb;
  BlockBuilder builder(restart_interval, /*internal_key_order=*/true);
  int i = 0;
  for (const auto& user : users) {
    InternalKey ikey(user, 1 + rnd->Uniform(1000), kTypeValue);
    fb.ikeys.push_back(ikey.Encode().ToString());
    fb.values.push_back("v" + std::to_string(i++));
    builder.Add(Slice(fb.ikeys.back()), Slice(fb.values.back()));
  }
  fb.contents = builder.Finish().ToString();
  return fb;
}

// One probe: PointGet and Iter::Seek must agree on found-ness, key, value.
void CheckAgainstSeek(const Block& block, PointGetContext* ctx,
                      const Slice& target, bool internal) {
  auto iter = block.NewIterator(internal);
  iter->Seek(target);
  const PointGetStatus ps = block.PointGet(target, ctx, internal);
  ASSERT_NE(ps, PointGetStatus::kCorrupt) << target.ToString();
  if (iter->Valid()) {
    ASSERT_EQ(ps, PointGetStatus::kFound);
    EXPECT_EQ(ctx->key().ToString(), iter->key().ToString());
    EXPECT_EQ(ctx->value().ToString(), iter->value().ToString());
  } else {
    ASSERT_TRUE(iter->status().ok());
    ASSERT_EQ(ps, PointGetStatus::kNotFound);
  }
}

TEST(PointGet, EquivalentToSeekOnInternalKeysFuzz) {
  Random rnd(20260808);
  const int kRestartIntervals[] = {1, 2, 3, 7, 16, 64};
  for (int round = 0; round < 60; round++) {
    const int ri = kRestartIntervals[rnd.Uniform(6)];
    const int n = 1 + rnd.Uniform(200);
    FuzzBlock fb = BuildInternalBlock(&rnd, n, ri);
    Block block(fb.contents);
    PointGetContext ctx;

    for (size_t i = 0; i < fb.ikeys.size(); i++) {
      // Exact internal key.
      CheckAgainstSeek(block, &ctx, Slice(fb.ikeys[i]), true);
      // Same user key at the max-sequence seek point (the LookupKey shape).
      const std::string user = ExtractUserKey(Slice(fb.ikeys[i])).ToString();
      LookupKey lkey(user, kMaxSequenceNumber);
      CheckAgainstSeek(block, &ctx, lkey.internal_key(), true);
    }
    // Absent keys: random, plus prefixes/extensions of present keys.
    for (int p = 0; p < 50; p++) {
      std::string user = RandomUserKey(&rnd, "");
      if (rnd.Uniform(2) == 0 && !fb.ikeys.empty()) {
        const size_t pick = rnd.Uniform(static_cast<int>(fb.ikeys.size()));
        user = ExtractUserKey(Slice(fb.ikeys[pick])).ToString();
        if (rnd.Uniform(2) == 0 && user.size() > 1) {
          user.resize(user.size() - 1);  // Strict prefix of a present key.
        } else {
          user.push_back('x');  // Extension.
        }
      }
      LookupKey lkey(user, rnd.Uniform(2) == 0 ? kMaxSequenceNumber
                                               : 1 + rnd.Uniform(1000));
      CheckAgainstSeek(block, &ctx, lkey.internal_key(), true);
    }
  }
}

TEST(PointGet, EquivalentToSeekOnRawKeysFuzz) {
  Random rnd(31337);
  for (int round = 0; round < 40; round++) {
    const int ri = 1 + rnd.Uniform(20);
    std::map<std::string, std::string> entries;
    std::string prev;
    const int n = 1 + rnd.Uniform(150);
    while (static_cast<int>(entries.size()) < n) {
      prev = RandomUserKey(&rnd, prev);
      entries[prev] = "val" + std::to_string(rnd.Next() % 1000);
    }
    BlockBuilder builder(ri);
    for (const auto& [k, v] : entries) builder.Add(Slice(k), Slice(v));
    Block block(builder.Finish().ToString());
    PointGetContext ctx;
    for (const auto& [k, v] : entries) {
      CheckAgainstSeek(block, &ctx, Slice(k), false);
    }
    for (int p = 0; p < 30; p++) {
      CheckAgainstSeek(block, &ctx, Slice(RandomUserKey(&rnd, prev)), false);
    }
  }
}

// Corrupt inputs must come back as kCorrupt or a clean kNotFound/kFound —
// never crash or read out of bounds (this suite runs under ASan/UBSan).
TEST(PointGet, CorruptInputsFuzzSafely) {
  Random rnd(777);
  for (int round = 0; round < 120; round++) {
    FuzzBlock fb = BuildInternalBlock(&rnd, 1 + rnd.Uniform(80),
                                      1 + rnd.Uniform(16));
    std::string bytes = fb.contents;
    // Mutate: byte flips and/or truncation.
    const int flips = 1 + rnd.Uniform(8);
    for (int f = 0; f < flips && !bytes.empty(); f++) {
      bytes[rnd.Uniform(static_cast<int>(bytes.size()))] ^=
          static_cast<char>(1 + rnd.Uniform(255));
    }
    if (rnd.Uniform(3) == 0) {
      bytes.resize(rnd.Uniform(static_cast<int>(bytes.size()) + 1));
    }
    Block block(bytes);
    PointGetContext ctx;
    for (int p = 0; p < 10; p++) {
      const size_t pick = rnd.Uniform(static_cast<int>(fb.ikeys.size()));
      const PointGetStatus ps = block.PointGet(Slice(fb.ikeys[pick]), &ctx);
      if (ps == PointGetStatus::kFound) {
        EXPECT_GE(ctx.key().size(), 8u);  // Internal-key invariant held.
      }
    }
  }
}

TEST(PointGet, NonZeroSharedAtRestartIsCorruption) {
  Random rnd(5);
  FuzzBlock fb = BuildInternalBlock(&rnd, 20, /*restart_interval=*/1);
  std::string bytes = fb.contents;
  // Entry 0 starts at offset 0 and is a restart: its shared byte must be 0.
  ASSERT_EQ(bytes[0], 0);
  bytes[0] = 1;
  Block block(bytes);
  PointGetContext ctx;
  EXPECT_EQ(block.PointGet(Slice(fb.ikeys[0]), &ctx),
            PointGetStatus::kCorrupt);
}

TEST(PointGet, ShortTargetOnInternalBlockIsCorruption) {
  Random rnd(6);
  FuzzBlock fb = BuildInternalBlock(&rnd, 10, 16);
  Block block(fb.contents);
  PointGetContext ctx;
  // An internal-key probe shorter than its own 8-byte trailer can't be
  // compared; it must be rejected, not read out of bounds.
  EXPECT_EQ(block.PointGet(Slice("abc"), &ctx), PointGetStatus::kCorrupt);
}

// A Block is immutable after construction: many threads PointGet against
// one Block with private contexts. Run under TSan via the concurrency
// label.
TEST(PointGet, ConcurrentLookupsAreSafe) {
  Random rnd(99);
  FuzzBlock fb = BuildInternalBlock(&rnd, 400, 16);
  Block block(fb.contents);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t]() {
      PointGetContext ctx;
      for (int i = 0; i < 2000; i++) {
        const size_t pick = (t * 2711 + i * 37) % fb.ikeys.size();
        if (block.PointGet(Slice(fb.ikeys[pick]), &ctx) !=
                PointGetStatus::kFound ||
            ctx.key() != Slice(fb.ikeys[pick]) ||
            ctx.value() != Slice(fb.values[pick])) {
          failures[t]++;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; t++) EXPECT_EQ(failures[t], 0) << t;
}

// The fast path and the iterator path must fold IDENTICAL attribution into
// the amp tracker: blocks_per_lookup, filter negatives, and bloom false
// positives feed the cost model and may not shift with the lookup
// implementation.
TEST(PointGet, AmpCountersIdenticalAcrossPaths) {
  for (const FilterVariant variant :
       {FilterVariant::kLegacy, FilterVariant::kBlocked}) {
    obs::AmpSnapshot snaps[2];
    for (const bool fast_path : {false, true}) {
      auto env = NewMemEnv();
      DbOptions opts;
      opts.env = env.get();
      opts.path = "/db";
      opts.policy = GrowthPolicyConfig::VTLevelPart(3);
      opts.filter_variant = variant;
      opts.point_read_fast_path = fast_path;
      std::unique_ptr<DB> db;
      ASSERT_TRUE(DB::Open(opts, &db).ok());
      // Two flushed runs with interleaved key ranges so lookups probe
      // multiple files, plus misses to exercise the filters.
      for (int i = 0; i < 400; i++) {
        db->Put(workload::FormatKey(i * 2, 16), "even" + std::to_string(i));
      }
      db->FlushMemTable();
      for (int i = 0; i < 400; i++) {
        db->Put(workload::FormatKey(i * 2 + 1, 16), "odd" + std::to_string(i));
      }
      db->FlushMemTable();
      std::string value;
      for (int i = 0; i < 1200; i++) {  // 800 hits + 400 misses.
        db->Get(workload::FormatKey(i, 16), &value);
      }
      snaps[fast_path ? 1 : 0] = db->GetAmpSnapshot();
    }
    const obs::AmpSnapshot& a = snaps[0];
    const obs::AmpSnapshot& b = snaps[1];
    EXPECT_EQ(a.lookups, b.lookups);
    EXPECT_EQ(a.memtable_hits, b.memtable_hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.num_levels, b.num_levels);
    ASSERT_GT(a.lookups, 0u);
    for (int i = 0; i < a.num_levels; i++) {
      SCOPED_TRACE("variant=" + std::to_string(static_cast<int>(variant)) +
                   " level=" + std::to_string(i));
      EXPECT_EQ(a.levels[i].files_probed, b.levels[i].files_probed);
      EXPECT_EQ(a.levels[i].filter_negatives, b.levels[i].filter_negatives);
      EXPECT_EQ(a.levels[i].bloom_false_positives,
                b.levels[i].bloom_false_positives);
      EXPECT_EQ(a.levels[i].block_reads, b.levels[i].block_reads);
      EXPECT_EQ(a.levels[i].hits, b.levels[i].hits);
    }
    EXPECT_DOUBLE_EQ(a.BlocksPerLookup(), b.BlocksPerLookup());
  }
}

}  // namespace
}  // namespace talus
