#include "table/sst_builder.h"
#include "table/sst_reader.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "env/env.h"
#include "lsm/dbformat.h"
#include "util/random.h"

namespace talus {
namespace {

struct SstFixture {
  std::unique_ptr<Env> env = NewMemEnv();
  std::map<std::string, std::string> model;  // user key -> value
  std::unique_ptr<SstReader> reader;
  LruCache cache{1 << 20};

  void Build(int num_keys, double bpk = 10.0, size_t block_size = 4096,
             FilterVariant variant = FilterVariant::kLegacy) {
    Random rnd(17);
    SequenceNumber seq = 1;
    for (int i = 0; i < num_keys; i++) {
      char key[32];
      snprintf(key, sizeof(key), "user%08d", i * 3);
      model[key] = "value-" + std::to_string(rnd.Next());
    }
    SstBuilderOptions opts;
    opts.bits_per_key = bpk;
    opts.block_size = block_size;
    opts.filter_variant = variant;
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile("/sst/000001.sst", &file).ok());
    SstBuilder builder(opts, std::move(file));
    for (const auto& [k, v] : model) {
      InternalKey ikey(k, seq++, kTypeValue);
      builder.Add(ikey.Encode(), v);
    }
    ASSERT_TRUE(builder.Finish().ok());
    ASSERT_TRUE(
        SstReader::Open(env.get(), "/sst/000001.sst", 1, &cache, &reader)
            .ok());
  }
};

TEST(Sst, PointLookupsFindEverything) {
  SstFixture fx;
  fx.Build(2000);
  for (const auto& [k, v] : fx.model) {
    std::string value;
    Status s;
    LookupKey lkey(k, kMaxSequenceNumber);
    ASSERT_TRUE(fx.reader->Get(lkey, &value, &s)) << k;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(value, v);
  }
}

TEST(Sst, MissingKeysUndecided) {
  SstFixture fx;
  fx.Build(1000);
  int decided = 0;
  for (int i = 0; i < 1000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user%08d", i * 3 + 1);  // Gaps.
    std::string value;
    Status s;
    if (fx.reader->Get(LookupKey(key, kMaxSequenceNumber), &value, &s)) {
      decided++;
    }
  }
  EXPECT_EQ(decided, 0);
}

TEST(Sst, FilterSkipsMostMissingKeys) {
  SstFixture fx;
  fx.Build(5000, 10.0);
  int filter_negative = 0;
  const int probes = 2000;
  for (int i = 0; i < probes; i++) {
    char key[32];
    snprintf(key, sizeof(key), "zzzz%08d", i);
    std::string value;
    Status s;
    SstReader::GetStats stats;
    fx.reader->Get(LookupKey(key, kMaxSequenceNumber), &value, &s, &stats);
    if (stats.filter_negative) filter_negative++;
  }
  EXPECT_GT(filter_negative, probes * 9 / 10);
}

TEST(Sst, IteratorFullScan) {
  SstFixture fx;
  fx.Build(3000);
  auto iter = fx.reader->NewIterator();
  iter->SeekToFirst();
  auto it = fx.model.begin();
  while (iter->Valid()) {
    ASSERT_NE(it, fx.model.end());
    EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), it->first);
    EXPECT_EQ(iter->value().ToString(), it->second);
    iter->Next();
    ++it;
  }
  EXPECT_EQ(it, fx.model.end());
}

TEST(Sst, IteratorSeek) {
  SstFixture fx;
  fx.Build(1000);
  auto iter = fx.reader->NewIterator();
  for (const auto& [k, v] : fx.model) {
    LookupKey lkey(k, kMaxSequenceNumber);
    iter->Seek(lkey.internal_key());
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), k);
  }
  // Seek past the end.
  LookupKey past("zzzzzzzz", kMaxSequenceNumber);
  iter->Seek(past.internal_key());
  EXPECT_FALSE(iter->Valid());
}

TEST(Sst, BlockCacheServesRepeatedReads) {
  SstFixture fx;
  fx.Build(2000);
  const std::string key = fx.model.begin()->first;
  std::string value;
  Status s;
  SstReader::GetStats first, second;
  fx.reader->Get(LookupKey(key, kMaxSequenceNumber), &value, &s, &first);
  fx.reader->Get(LookupKey(key, kMaxSequenceNumber), &value, &s, &second);
  EXPECT_TRUE(first.block_read);
  EXPECT_TRUE(second.cache_hit);
}

TEST(Sst, SmallBlocksRoundTrip) {
  SstFixture fx;
  fx.Build(500, 10.0, /*block_size=*/256);
  for (const auto& [k, v] : fx.model) {
    std::string value;
    Status s;
    ASSERT_TRUE(fx.reader->Get(LookupKey(k, kMaxSequenceNumber), &value, &s));
    EXPECT_EQ(value, v);
  }
}

TEST(Sst, PosixEnvRoundTrip) {
  Env* env = Env::Default();
  const std::string dir = ::testing::TempDir() + "talus_sst_test";
  ASSERT_TRUE(env->CreateDirIfMissing(dir).ok());
  const std::string fname = dir + "/000007.sst";

  SstBuilderOptions opts;
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env->NewWritableFile(fname, &file).ok());
  SstBuilder builder(opts, std::move(file));
  std::map<std::string, std::string> model;
  for (int i = 0; i < 500; i++) {
    char key[32];
    snprintf(key, sizeof(key), "posix%06d", i);
    model[key] = "val" + std::to_string(i);
  }
  SequenceNumber seq = 1;
  for (const auto& [k, v] : model) {
    builder.Add(InternalKey(k, seq++, kTypeValue).Encode(), v);
  }
  ASSERT_TRUE(builder.Finish().ok());

  LruCache cache(1 << 20);
  std::unique_ptr<SstReader> reader;
  ASSERT_TRUE(SstReader::Open(env, fname, 7, &cache, &reader).ok());
  for (const auto& [k, v] : model) {
    std::string value;
    Status s;
    ASSERT_TRUE(reader->Get(LookupKey(k, kMaxSequenceNumber), &value, &s));
    EXPECT_EQ(value, v);
  }
  env->RemoveFile(fname);
}

// Compatibility matrix: SSTs written with either filter variant must read
// back correctly through both the PointGet fast path and the legacy
// iterator path — one reader handles any mix of file vintages.
TEST(Sst, FilterVariantAndGetPathMatrix) {
  for (const FilterVariant variant :
       {FilterVariant::kLegacy, FilterVariant::kBlocked}) {
    SstFixture fx;
    fx.Build(2000, 10.0, 4096, variant);
    for (const bool fast_path : {false, true}) {
      SCOPED_TRACE("variant=" + std::to_string(static_cast<int>(variant)) +
                   " fast_path=" + std::to_string(fast_path));
      for (const auto& [k, v] : fx.model) {
        std::string value;
        Status s;
        LookupKey lkey(k, kMaxSequenceNumber);
        ASSERT_TRUE(fx.reader->Get(lkey, &value, &s, nullptr, fast_path))
            << k;
        EXPECT_TRUE(s.ok());
        EXPECT_EQ(value, v);
      }
      // Missing keys stay undecided and the filter still fires.
      int decided = 0, filter_negative = 0;
      for (int i = 0; i < 1000; i++) {
        char key[32];
        snprintf(key, sizeof(key), "zzzz%08d", i);
        std::string value;
        Status s;
        SstReader::GetStats stats;
        if (fx.reader->Get(LookupKey(key, kMaxSequenceNumber), &value, &s,
                           &stats, fast_path)) {
          decided++;
        }
        if (stats.filter_negative) filter_negative++;
      }
      EXPECT_EQ(decided, 0);
      EXPECT_GT(filter_negative, 900);
    }
  }
}

// Both Get paths must report identical per-lookup stats: the amp counters
// built from them feed the cost model and must not shift with the path.
TEST(Sst, GetStatsIdenticalAcrossPaths) {
  SstFixture slow, fast;
  slow.Build(3000);
  fast.Build(3000);
  for (int i = 0; i < 3000; i++) {
    char key[32];
    snprintf(key, sizeof(key), "user%08d", i);  // Mix of hits and misses.
    std::string v1, v2;
    Status s1, s2;
    SstReader::GetStats g1, g2;
    const bool d1 = slow.reader->Get(LookupKey(key, kMaxSequenceNumber), &v1,
                                     &s1, &g1, /*fast_path=*/false);
    const bool d2 = fast.reader->Get(LookupKey(key, kMaxSequenceNumber), &v2,
                                     &s2, &g2, /*fast_path=*/true);
    ASSERT_EQ(d1, d2) << key;
    EXPECT_EQ(g1.filter_negative, g2.filter_negative) << key;
    EXPECT_EQ(g1.block_read, g2.block_read) << key;
    EXPECT_EQ(g1.cache_hit, g2.cache_hit) << key;
    if (d1) {
      EXPECT_EQ(s1.ok(), s2.ok());
      EXPECT_EQ(v1, v2);
    }
  }
}

TEST(Sst, TombstonesDecideLookups) {
  auto env = NewMemEnv();
  SstBuilderOptions opts;
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env->NewWritableFile("/t.sst", &file).ok());
  SstBuilder builder(opts, std::move(file));
  builder.Add(InternalKey("dead", 5, kTypeDeletion).Encode(), "");
  builder.Add(InternalKey("live", 6, kTypeValue).Encode(), "v");
  ASSERT_TRUE(builder.Finish().ok());

  std::unique_ptr<SstReader> reader;
  ASSERT_TRUE(SstReader::Open(env.get(), "/t.sst", 1, nullptr, &reader).ok());
  std::string value;
  Status s;
  ASSERT_TRUE(reader->Get(LookupKey("dead", 100), &value, &s));
  EXPECT_TRUE(s.IsNotFound());
  ASSERT_TRUE(reader->Get(LookupKey("live", 100), &value, &s));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(value, "v");
}

}  // namespace
}  // namespace talus
