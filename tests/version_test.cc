#include "lsm/version.h"

#include <gtest/gtest.h>

#include "lsm/filename.h"
#include "lsm/manifest.h"
#include "env/env.h"

namespace talus {
namespace {

FileMetaPtr File(uint64_t number, const std::string& lo, const std::string& hi,
                 uint64_t size = 1000, uint64_t entries = 10) {
  auto f = std::make_shared<FileMeta>();
  f->number = number;
  f->file_size = size;
  f->num_entries = entries;
  f->payload_bytes = size * 9 / 10;
  f->smallest = InternalKey(lo, 100, kTypeValue);
  f->largest = InternalKey(hi, 1, kTypeValue);
  f->oldest_seq = 1;
  return f;
}

TEST(SortedRun, Aggregates) {
  SortedRun run;
  run.run_id = 1;
  run.files = {File(1, "a", "c"), File(2, "d", "f", 2000, 20)};
  EXPECT_EQ(run.TotalBytes(), 3000u);
  EXPECT_EQ(run.TotalEntries(), 30u);
  EXPECT_EQ(run.PayloadBytes(), 900u + 1800u);
}

TEST(SortedRun, OverlappingFiles) {
  SortedRun run;
  run.files = {File(1, "b", "d"), File(2, "f", "h"), File(3, "j", "l")};

  EXPECT_TRUE(run.OverlappingFiles("m", "z").empty());
  EXPECT_TRUE(run.OverlappingFiles("a", "a").empty());
  EXPECT_TRUE(run.OverlappingFiles("e", "e").empty());

  auto all = run.OverlappingFiles("", "");
  EXPECT_EQ(all.size(), 3u);

  auto mid = run.OverlappingFiles("c", "g");
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid[0], 0u);
  EXPECT_EQ(mid[1], 1u);

  auto open_left = run.OverlappingFiles("", "e");
  EXPECT_EQ(open_left.size(), 1u);
  auto open_right = run.OverlappingFiles("g", "");
  EXPECT_EQ(open_right.size(), 2u);
}

TEST(Version, BottommostAndTotals) {
  Version v;
  v.EnsureLevels(5);
  EXPECT_EQ(v.BottommostNonEmptyLevel(), -1);
  SortedRun run;
  run.run_id = 7;
  run.files = {File(1, "a", "b")};
  v.levels[2].runs.push_back(run);
  EXPECT_EQ(v.BottommostNonEmptyLevel(), 2);
  EXPECT_EQ(v.TotalBytes(), 1000u);
  EXPECT_EQ(v.TotalRuns(), 1u);
  EXPECT_NE(v.levels[2].FindRun(7), nullptr);
  EXPECT_EQ(v.levels[2].FindRun(8), nullptr);
}

TEST(Manifest, SnapshotRoundTrip) {
  auto env = NewMemEnv();
  ASSERT_TRUE(env->CreateDirIfMissing("/m").ok());

  ManifestData data;
  data.next_file_number = 42;
  data.next_run_id = 17;
  data.last_sequence = 12345;
  data.flush_count = 9;
  data.wal_number = 41;
  data.policy_name = "vertiorizon";
  data.policy_state = std::string("\x01\x02\x00\x03", 4);
  data.version.EnsureLevels(3);
  SortedRun run;
  run.run_id = 5;
  run.files = {File(10, "aaa", "mmm"), File(11, "nnn", "zzz")};
  data.version.levels[1].runs.push_back(run);

  ASSERT_TRUE(WriteManifestSnapshot(env.get(), "/m", 1, data).ok());

  ManifestData loaded;
  uint64_t number = 0;
  ASSERT_TRUE(ReadCurrentManifest(env.get(), "/m", &loaded, &number).ok());
  EXPECT_EQ(number, 1u);
  EXPECT_EQ(loaded.next_file_number, 42u);
  EXPECT_EQ(loaded.next_run_id, 17u);
  EXPECT_EQ(loaded.last_sequence, 12345u);
  EXPECT_EQ(loaded.flush_count, 9u);
  EXPECT_EQ(loaded.wal_number, 41u);
  EXPECT_EQ(loaded.policy_name, "vertiorizon");
  EXPECT_EQ(loaded.policy_state, data.policy_state);
  ASSERT_EQ(loaded.version.levels.size(), 3u);
  ASSERT_EQ(loaded.version.levels[1].runs.size(), 1u);
  const SortedRun& r = loaded.version.levels[1].runs[0];
  EXPECT_EQ(r.run_id, 5u);
  ASSERT_EQ(r.files.size(), 2u);
  EXPECT_EQ(r.files[0]->number, 10u);
  EXPECT_EQ(r.files[0]->smallest.user_key().ToString(), "aaa");
  EXPECT_EQ(r.files[1]->largest.user_key().ToString(), "zzz");
}

TEST(Manifest, CurrentRepointsAtomically) {
  auto env = NewMemEnv();
  ASSERT_TRUE(env->CreateDirIfMissing("/m").ok());
  ManifestData a, b;
  a.policy_name = "first";
  b.policy_name = "second";
  ASSERT_TRUE(WriteManifestSnapshot(env.get(), "/m", 1, a).ok());
  ASSERT_TRUE(WriteManifestSnapshot(env.get(), "/m", 2, b).ok());
  ManifestData loaded;
  uint64_t number;
  ASSERT_TRUE(ReadCurrentManifest(env.get(), "/m", &loaded, &number).ok());
  EXPECT_EQ(number, 2u);
  EXPECT_EQ(loaded.policy_name, "second");
}

TEST(Manifest, MissingCurrentIsNotFound) {
  auto env = NewMemEnv();
  ManifestData data;
  uint64_t number;
  EXPECT_TRUE(
      ReadCurrentManifest(env.get(), "/nodir", &data, &number).IsNotFound());
}

TEST(Filename, Formats) {
  EXPECT_EQ(SstFileName("/db", 7), "/db/000007.sst");
  EXPECT_EQ(WalFileName("/db", 123), "/db/000123.wal");
  EXPECT_EQ(ManifestFileName("/db", 5), "/db/MANIFEST-000005");
  EXPECT_EQ(CurrentFileName("/db"), "/db/CURRENT");
}

TEST(Filename, Parse) {
  uint64_t number;
  std::string suffix;
  ASSERT_TRUE(ParseFileName("000007.sst", &number, &suffix));
  EXPECT_EQ(number, 7u);
  EXPECT_EQ(suffix, "sst");
  ASSERT_TRUE(ParseFileName("MANIFEST-000012", &number, &suffix));
  EXPECT_EQ(number, 12u);
  EXPECT_EQ(suffix, "manifest");
  EXPECT_FALSE(ParseFileName("CURRENT", &number, &suffix));
  EXPECT_FALSE(ParseFileName(".sst", &number, &suffix));
  EXPECT_FALSE(ParseFileName("abc.sst", &number, &suffix));
}

}  // namespace
}  // namespace talus
