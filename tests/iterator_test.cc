// Iterator semantics across the stack: merging iterator ordering and
// direction changes, DB iterator tombstone/version skipping, and cross-run
// merge correctness under every merge-relevant policy.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "env/env.h"
#include "lsm/db.h"
#include "mem/memtable.h"
#include "table/merging_iterator.h"
#include "util/random.h"
#include "workload/generator.h"

namespace talus {
namespace {

std::unique_ptr<MemTable> MakeMem(
    const std::vector<std::tuple<std::string, std::string, SequenceNumber>>&
        entries) {
  auto mem = std::make_unique<MemTable>();
  for (const auto& [k, v, seq] : entries) {
    mem->Add(seq, kTypeValue, k, v);
  }
  return mem;
}

TEST(MergingIterator, InterleavesSources) {
  auto mem1 = MakeMem({{"a", "1", 1}, {"c", "3", 3}, {"e", "5", 5}});
  auto mem2 = MakeMem({{"b", "2", 2}, {"d", "4", 4}, {"f", "6", 6}});
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(mem1->NewIterator());
  children.push_back(mem2->NewIterator());
  auto merged = NewMergingIterator(InternalKeyComparator(),
                                   std::move(children));

  std::vector<std::string> keys;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    keys.push_back(ExtractUserKey(merged->key()).ToString());
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c", "d", "e", "f"}));
}

TEST(MergingIterator, NewestVersionFirstWithinKey) {
  auto older = MakeMem({{"k", "old", 10}});
  auto newer = MakeMem({{"k", "new", 20}});
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(older->NewIterator());
  children.push_back(newer->NewIterator());
  auto merged = NewMergingIterator(InternalKeyComparator(),
                                   std::move(children));
  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->value().ToString(), "new");
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->value().ToString(), "old");
}

TEST(MergingIterator, SeekLandsOnLowerBound) {
  auto mem1 = MakeMem({{"apple", "1", 1}, {"mango", "2", 2}});
  auto mem2 = MakeMem({{"banana", "3", 3}, {"peach", "4", 4}});
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(mem1->NewIterator());
  children.push_back(mem2->NewIterator());
  auto merged = NewMergingIterator(InternalKeyComparator(),
                                   std::move(children));

  LookupKey lkey("b", kMaxSequenceNumber);
  merged->Seek(lkey.internal_key());
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(ExtractUserKey(merged->key()).ToString(), "banana");
}

TEST(MergingIterator, BackwardIteration) {
  auto mem1 = MakeMem({{"a", "1", 1}, {"c", "3", 3}});
  auto mem2 = MakeMem({{"b", "2", 2}, {"d", "4", 4}});
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(mem1->NewIterator());
  children.push_back(mem2->NewIterator());
  auto merged = NewMergingIterator(InternalKeyComparator(),
                                   std::move(children));
  merged->SeekToLast();
  std::vector<std::string> keys;
  while (merged->Valid()) {
    keys.push_back(ExtractUserKey(merged->key()).ToString());
    merged->Prev();
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"d", "c", "b", "a"}));
}

TEST(MergingIterator, DirectionSwitches) {
  auto mem1 = MakeMem({{"a", "1", 1}, {"c", "3", 3}, {"e", "5", 5}});
  auto mem2 = MakeMem({{"b", "2", 2}, {"d", "4", 4}});
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(mem1->NewIterator());
  children.push_back(mem2->NewIterator());
  auto merged = NewMergingIterator(InternalKeyComparator(),
                                   std::move(children));

  merged->SeekToFirst();  // a
  merged->Next();         // b
  merged->Next();         // c
  EXPECT_EQ(ExtractUserKey(merged->key()).ToString(), "c");
  merged->Prev();  // b
  EXPECT_EQ(ExtractUserKey(merged->key()).ToString(), "b");
  merged->Next();  // c
  EXPECT_EQ(ExtractUserKey(merged->key()).ToString(), "c");
  merged->Next();  // d
  EXPECT_EQ(ExtractUserKey(merged->key()).ToString(), "d");
}

TEST(DbIterator, SkipsTombstonesAndOldVersions) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/it";
  opts.write_buffer_size = 2 << 10;
  opts.block_size = 512;
  opts.policy = GrowthPolicyConfig::VTTierFull(3);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());

  std::map<std::string, std::string> model;
  Random rnd(31);
  for (int i = 0; i < 1200; i++) {
    std::string key = workload::FormatKey(rnd.Uniform(80), 12);
    if (rnd.OneIn(3)) {
      db->Delete(key);
      model.erase(key);
    } else {
      std::string value = "i" + std::to_string(i);
      db->Put(key, value);
      model[key] = value;
    }
  }

  auto iter = db->NewIterator();
  auto mit = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(iter->key().ToString(), mit->first);
    EXPECT_EQ(iter->value().ToString(), mit->second);
  }
  EXPECT_EQ(mit, model.end());
  EXPECT_TRUE(iter->status().ok());
}

TEST(DbIterator, SeekMidRange) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/it2";
  opts.write_buffer_size = 2 << 10;
  opts.policy = GrowthPolicyConfig::HRLevel(3);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  for (int i = 0; i < 300; i += 3) {  // Keys 0, 3, 6, ...
    ASSERT_TRUE(db->Put(workload::FormatKey(i, 12), std::to_string(i)).ok());
  }
  auto iter = db->NewIterator();
  iter->Seek(workload::FormatKey(100, 12));  // Not present: lands on 102.
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), workload::FormatKey(102, 12));
  iter->Seek(workload::FormatKey(297, 12));
  ASSERT_TRUE(iter->Valid());
  iter->Next();
  EXPECT_FALSE(iter->Valid());  // Past the end.
}

TEST(DbIterator, EmptyDb) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/it3";
  opts.policy = GrowthPolicyConfig::VTLevelPart(3);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  auto iter = db->NewIterator();
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  iter->Seek("anything");
  EXPECT_FALSE(iter->Valid());
}

TEST(DbIterator, AllDeletedYieldsEmpty) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/it4";
  opts.write_buffer_size = 2 << 10;
  opts.policy = GrowthPolicyConfig::VTLevelPart(3);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db->Put(workload::FormatKey(i, 12), "x").ok());
  }
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db->Delete(workload::FormatKey(i, 12)).ok());
  }
  auto iter = db->NewIterator();
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
}

}  // namespace
}  // namespace talus
