#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace talus {
namespace crc32c {
namespace {

TEST(Crc32c, StandardVectors) {
  // Known CRC32C test vectors (RFC 3720 / LevelDB test suite).
  char buf[32];

  memset(buf, 0, sizeof(buf));
  EXPECT_EQ(Value(buf, sizeof(buf)), 0x8a9136aau);

  memset(buf, 0xff, sizeof(buf));
  EXPECT_EQ(Value(buf, sizeof(buf)), 0x62a8ab43u);

  for (int i = 0; i < 32; i++) buf[i] = static_cast<char>(i);
  EXPECT_EQ(Value(buf, sizeof(buf)), 0x46dd794eu);

  for (int i = 0; i < 32; i++) buf[i] = static_cast<char>(31 - i);
  EXPECT_EQ(Value(buf, sizeof(buf)), 0x113fdb5cu);
}

TEST(Crc32c, Values) {
  EXPECT_NE(Value("a", 1), Value("foo", 3));
}

TEST(Crc32c, Extend) {
  EXPECT_EQ(Value("hello world", 11), Extend(Value("hello ", 6), "world", 5));
}

TEST(Crc32c, Mask) {
  uint32_t crc = Value("foo", 3);
  EXPECT_NE(crc, Mask(crc));
  EXPECT_NE(crc, Mask(Mask(crc)));
  EXPECT_EQ(crc, Unmask(Mask(crc)));
  EXPECT_EQ(crc, Unmask(Unmask(Mask(Mask(crc)))));
}

}  // namespace
}  // namespace crc32c
}  // namespace talus
