// Snapshot semantics: pinned read views must be repeatable across updates,
// flushes, and compactions (including manual major compactions).
#include <gtest/gtest.h>

#include <memory>

#include "env/env.h"
#include "lsm/db.h"
#include "workload/generator.h"

namespace talus {
namespace {

DbOptions Opts(Env* env) {
  DbOptions opts;
  opts.env = env;
  opts.path = "/snap";
  opts.write_buffer_size = 4 << 10;
  opts.target_file_size = 4 << 10;
  opts.block_size = 1024;
  opts.policy = GrowthPolicyConfig::VTLevelPart(3);
  return opts;
}

std::string Key(int i) { return workload::FormatKey(i, 16); }

TEST(Snapshot, RepeatableReadInMemtable) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Opts(env.get()), &db).ok());

  ASSERT_TRUE(db->Put("k", "v1").ok());
  const Snapshot* snap = db->GetSnapshot();
  ASSERT_TRUE(db->Put("k", "v2").ok());

  std::string value;
  ASSERT_TRUE(db->Get("k", &value).ok());
  EXPECT_EQ(value, "v2");
  ASSERT_TRUE(db->Get("k", &value, snap).ok());
  EXPECT_EQ(value, "v1");
  db->ReleaseSnapshot(snap);
}

TEST(Snapshot, SurvivesFlushesAndCompactions) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Opts(env.get()), &db).ok());

  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db->Put(Key(i), "old-" + std::to_string(i)).ok());
  }
  const Snapshot* snap = db->GetSnapshot();

  // Overwrite everything several times across many flushes/compactions.
  for (int round = 0; round < 10; round++) {
    for (int i = 0; i < 50; i++) {
      ASSERT_TRUE(
          db->Put(Key(i), "new-" + std::to_string(round) + "-" +
                              std::to_string(i) + std::string(100, 'x'))
              .ok());
    }
  }
  EXPECT_GT(db->stats().compactions, 0u);

  std::string value;
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db->Get(Key(i), &value, snap).ok()) << i;
    EXPECT_EQ(value, "old-" + std::to_string(i)) << i;
  }
  db->ReleaseSnapshot(snap);
}

TEST(Snapshot, SurvivesManualMajorCompaction) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Opts(env.get()), &db).ok());

  ASSERT_TRUE(db->Put("pinned", "original").ok());
  const Snapshot* snap = db->GetSnapshot();
  ASSERT_TRUE(db->Put("pinned", "updated").ok());
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db->Put(Key(i), std::string(100, 'f')).ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());

  std::string value;
  ASSERT_TRUE(db->Get("pinned", &value, snap).ok());
  EXPECT_EQ(value, "original");
  ASSERT_TRUE(db->Get("pinned", &value).ok());
  EXPECT_EQ(value, "updated");
  db->ReleaseSnapshot(snap);
}

TEST(Snapshot, DeletionVisibleOnlyAfterSnapshot) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Opts(env.get()), &db).ok());

  ASSERT_TRUE(db->Put("doomed", "alive").ok());
  const Snapshot* snap = db->GetSnapshot();
  ASSERT_TRUE(db->Delete("doomed").ok());

  std::string value;
  EXPECT_TRUE(db->Get("doomed", &value).IsNotFound());
  ASSERT_TRUE(db->Get("doomed", &value, snap).ok());
  EXPECT_EQ(value, "alive");
  db->ReleaseSnapshot(snap);
}

TEST(Snapshot, ReleaseUnpinsVersions) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Opts(env.get()), &db).ok());

  ASSERT_TRUE(db->Put("k", "v1").ok());
  const Snapshot* snap = db->GetSnapshot();
  ASSERT_TRUE(db->Put("k", "v2").ok());
  db->ReleaseSnapshot(snap);

  // After release + major compaction the old version is reclaimed: the
  // store holds exactly one version of "k".
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db->Put(Key(i), std::string(100, 'f')).ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());
  std::string value;
  ASSERT_TRUE(db->Get("k", &value).ok());
  EXPECT_EQ(value, "v2");
  // One entry for "k" across the whole tree.
  uint64_t k_entries = 0;
  auto iter = db->NewIterator();
  for (iter->Seek("k"); iter->Valid() && iter->key() == Slice("k");
       iter->Next()) {
    k_entries++;
  }
  EXPECT_EQ(k_entries, 1u);
}

TEST(Snapshot, MultipleSnapshotsLayered) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Opts(env.get()), &db).ok());

  ASSERT_TRUE(db->Put("k", "v1").ok());
  const Snapshot* s1 = db->GetSnapshot();
  ASSERT_TRUE(db->Put("k", "v2").ok());
  const Snapshot* s2 = db->GetSnapshot();
  ASSERT_TRUE(db->Put("k", "v3").ok());

  // Push through enough data for several compactions.
  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(db->Put(Key(i), std::string(100, 'z')).ok());
  }

  std::string value;
  ASSERT_TRUE(db->Get("k", &value, s1).ok());
  EXPECT_EQ(value, "v1");
  ASSERT_TRUE(db->Get("k", &value, s2).ok());
  EXPECT_EQ(value, "v2");
  ASSERT_TRUE(db->Get("k", &value).ok());
  EXPECT_EQ(value, "v3");
  db->ReleaseSnapshot(s1);
  db->ReleaseSnapshot(s2);
}

TEST(Properties, KnownPropertiesReport) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Opts(env.get()), &db).ok());
  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(db->Put(Key(i), std::string(100, 'p')).ok());
  }
  std::string value;
  EXPECT_TRUE(db->GetProperty("talus.stats", &value));
  EXPECT_NE(value.find("puts=300"), std::string::npos);
  EXPECT_TRUE(db->GetProperty("talus.levels", &value));
  EXPECT_NE(value.find("L0"), std::string::npos);
  EXPECT_TRUE(db->GetProperty("talus.num-runs", &value));
  EXPECT_GT(std::stoi(value), 0);
  EXPECT_TRUE(db->GetProperty("talus.data-bytes", &value));
  EXPECT_GT(std::stoll(value), 0);
  EXPECT_TRUE(db->GetProperty("talus.cstats", &value));
  EXPECT_FALSE(db->GetProperty("talus.unknown", &value));
}

TEST(ManualCompaction, CollapsesToSingleRun) {
  auto env = NewMemEnv();
  DbOptions opts = Opts(env.get());
  opts.policy = GrowthPolicyConfig::VTTierFull(3);  // Many runs naturally.
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db->Put(Key(i % 200), std::string(100, 'm')).ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());
  EXPECT_EQ(db->current_version().TotalRuns(), 1u);
  // All data still present.
  std::string value;
  for (int i = 0; i < 200; i++) {
    EXPECT_TRUE(db->Get(Key(i), &value).ok()) << i;
  }
}

}  // namespace
}  // namespace talus
