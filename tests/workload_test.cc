#include "workload/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "tuning/workload_mix.h"

namespace talus {
namespace workload {
namespace {

TEST(FormatKey, FixedWidthAndOrdered) {
  const std::string a = FormatKey(1, 24);
  const std::string b = FormatKey(2, 24);
  const std::string c = FormatKey(1000000, 24);
  EXPECT_EQ(a.size(), 24u);
  EXPECT_EQ(b.size(), 24u);
  EXPECT_EQ(c.size(), 24u);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(MakeValue, DeterministicAndSized) {
  EXPECT_EQ(MakeValue(7, 3, 100), MakeValue(7, 3, 100));
  EXPECT_NE(MakeValue(7, 3, 100), MakeValue(7, 4, 100));
  EXPECT_NE(MakeValue(7, 3, 100), MakeValue(8, 3, 100));
  EXPECT_EQ(MakeValue(123, 9, 896).size(), 896u);
  EXPECT_EQ(MakeValue(123, 9, 8).size(), 8u);
}

TEST(UniformPicker, CoversKeySpace) {
  KeySpaceSpec spec;
  spec.num_keys = 100;
  auto picker = NewKeyPicker(spec);
  Random rnd(1);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; i++) {
    uint64_t k = picker->Next(&rnd);
    ASSERT_LT(k, 100u);
    seen.insert(k);
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(ZipfianPicker, SkewedTowardsFewKeys) {
  KeySpaceSpec spec;
  spec.num_keys = 10000;
  spec.distribution = Distribution::kZipfian;
  auto picker = NewKeyPicker(spec);
  Random rnd(2);
  std::map<uint64_t, int> counts;
  const int samples = 100000;
  for (int i = 0; i < samples; i++) {
    counts[picker->Next(&rnd)]++;
  }
  // Top-20 keys should hold a large share of the mass (YCSB zipfian 0.99
  // puts ~18% of accesses on the hottest 20 of 10k items).
  std::vector<int> freq;
  for (const auto& [k, c] : counts) freq.push_back(c);
  std::sort(freq.rbegin(), freq.rend());
  int top20 = 0;
  for (int i = 0; i < 20 && i < static_cast<int>(freq.size()); i++) {
    top20 += freq[i];
  }
  EXPECT_GT(top20, samples / 10);
  // But the tail is still touched.
  EXPECT_GT(counts.size(), 2000u);
}

TEST(ZipfianPicker, ScramblingSpreadsHotKeys) {
  KeySpaceSpec spec;
  spec.num_keys = 10000;
  spec.distribution = Distribution::kZipfian;
  auto picker = NewKeyPicker(spec);
  Random rnd(3);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; i++) counts[picker->Next(&rnd)]++;
  // Find the two hottest keys; scrambled zipfian should NOT place them
  // adjacently at the start of the key space.
  uint64_t hottest = 0;
  int best = 0;
  for (const auto& [k, c] : counts) {
    if (c > best) {
      best = c;
      hottest = k;
    }
  }
  EXPECT_GT(hottest, 100u);  // FNV scrambling moved it off the low indices.
}

TEST(HotColdPicker, HotSetDominates) {
  KeySpaceSpec spec;
  spec.num_keys = 100000;
  spec.distribution = Distribution::kHotCold;
  spec.hot_keys = 50;
  spec.hot_probability = 0.9;
  auto picker = NewKeyPicker(spec);
  Random rnd(4);
  std::map<uint64_t, int> counts;
  const int samples = 50000;
  for (int i = 0; i < samples; i++) counts[picker->Next(&rnd)]++;
  // The 50 hottest observed keys should absorb ~90% of accesses.
  std::vector<int> freq;
  for (const auto& [k, c] : counts) freq.push_back(c);
  std::sort(freq.rbegin(), freq.rend());
  int hot_mass = 0;
  for (int i = 0; i < 50 && i < static_cast<int>(freq.size()); i++) {
    hot_mass += freq[i];
  }
  EXPECT_GT(hot_mass, samples * 8 / 10);
}

TEST(OpStream, MixProportionsRespected) {
  KeySpaceSpec spec;
  spec.num_keys = 1000;
  OpMix mix{0.6, 0.3, 0.1};
  OpStream stream(spec, mix, 99);
  int counts[3] = {0, 0, 0};
  const int n = 30000;
  for (int i = 0; i < n; i++) {
    counts[static_cast<int>(stream.Next().type)]++;
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.6, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.1, 0.02);
}

TEST(OpStream, DeterministicForSeed) {
  KeySpaceSpec spec;
  spec.num_keys = 1000;
  OpStream a(spec, BalancedMix(), 7);
  OpStream b(spec, BalancedMix(), 7);
  for (int i = 0; i < 1000; i++) {
    const Op oa = a.Next();
    const Op ob = b.Next();
    EXPECT_EQ(static_cast<int>(oa.type), static_cast<int>(ob.type));
    EXPECT_EQ(oa.key_index, ob.key_index);
  }
}

TEST(PresetMixes, MatchPaperRatios) {
  EXPECT_DOUBLE_EQ(ReadHeavyMix().updates, 0.1);
  EXPECT_DOUBLE_EQ(ReadHeavyMix().point_lookups, 0.9);
  EXPECT_DOUBLE_EQ(WriteHeavyMix().updates, 0.9);
  EXPECT_DOUBLE_EQ(BalancedMix().updates, 0.5);
  EXPECT_DOUBLE_EQ(RangeScanMix().updates, 0.75);
  EXPECT_DOUBLE_EQ(RangeScanMix().range_lookups, 0.25);
}

// The drift monitor's input: AdvanceWindow() snapshots the lifetime
// counters as the window base (epoch swap, no reset), so the windowed
// estimate sees only recent traffic while the lifetime estimate keeps
// accumulating.
TEST(WorkloadMixTracker, WindowedEstimateSeesOnlyRecentTraffic) {
  WorkloadMixTracker tracker;
  for (int i = 0; i < 900; i++) tracker.RecordUpdate();
  for (int i = 0; i < 100; i++) tracker.RecordPointLookup();
  EXPECT_EQ(tracker.total(), 1000u);
  EXPECT_DOUBLE_EQ(tracker.Estimate().updates, 0.9);
  // Window and lifetime agree before the first AdvanceWindow.
  EXPECT_EQ(tracker.WindowTotal(), 1000u);
  EXPECT_DOUBLE_EQ(tracker.WindowEstimate().updates, 0.9);

  tracker.AdvanceWindow();
  EXPECT_EQ(tracker.WindowTotal(), 0u);
  // An empty window falls back to the lifetime estimate rather than
  // reporting a meaningless all-zero mix.
  EXPECT_DOUBLE_EQ(tracker.WindowEstimate().updates, 0.9);

  // A read-heavy window after a write-heavy lifetime: the windowed view
  // flips immediately, the lifetime view barely moves.
  for (int i = 0; i < 200; i++) tracker.RecordPointLookup();
  const WorkloadMixTracker::RawCounts window = tracker.WindowRawCounts();
  EXPECT_EQ(window.updates, 0u);
  EXPECT_EQ(window.points, 200u);
  EXPECT_DOUBLE_EQ(tracker.WindowEstimate().point_lookups, 1.0);
  EXPECT_DOUBLE_EQ(tracker.WindowEstimate().updates, 0.0);
  EXPECT_DOUBLE_EQ(tracker.Estimate().updates, 0.75);  // 900 / 1200.

  // Reset clears the window bases too, not just the lifetime counters.
  tracker.Reset();
  EXPECT_EQ(tracker.total(), 0u);
  EXPECT_EQ(tracker.WindowTotal(), 0u);
  tracker.RecordRangeLookup();
  EXPECT_EQ(tracker.WindowRawCounts().ranges, 1u);
  EXPECT_DOUBLE_EQ(tracker.WindowEstimate().range_lookups, 1.0);
}

}  // namespace
}  // namespace workload
}  // namespace talus
