#include "mem/memtable.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "util/random.h"

namespace talus {
namespace {

TEST(MemTable, AddAndGet) {
  MemTable mem;
  mem.Add(1, kTypeValue, "alpha", "one");
  mem.Add(2, kTypeValue, "beta", "two");

  std::string value;
  Status s;
  ASSERT_TRUE(mem.Get(LookupKey("alpha", 10), &value, &s));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(value, "one");
  ASSERT_TRUE(mem.Get(LookupKey("beta", 10), &value, &s));
  EXPECT_EQ(value, "two");
  EXPECT_FALSE(mem.Get(LookupKey("gamma", 10), &value, &s));
}

TEST(MemTable, NewestVersionWins) {
  MemTable mem;
  mem.Add(1, kTypeValue, "k", "v1");
  mem.Add(2, kTypeValue, "k", "v2");
  mem.Add(3, kTypeValue, "k", "v3");

  std::string value;
  Status s;
  ASSERT_TRUE(mem.Get(LookupKey("k", 100), &value, &s));
  EXPECT_EQ(value, "v3");
}

TEST(MemTable, SnapshotVisibility) {
  MemTable mem;
  mem.Add(5, kTypeValue, "k", "v5");
  mem.Add(9, kTypeValue, "k", "v9");

  std::string value;
  Status s;
  // A lookup at sequence 7 must see the version at seq 5, not 9.
  ASSERT_TRUE(mem.Get(LookupKey("k", 7), &value, &s));
  EXPECT_EQ(value, "v5");
  ASSERT_TRUE(mem.Get(LookupKey("k", 9), &value, &s));
  EXPECT_EQ(value, "v9");
  // Before the first version existed: not found in the memtable.
  EXPECT_FALSE(mem.Get(LookupKey("k", 4), &value, &s));
}

TEST(MemTable, TombstoneReported) {
  MemTable mem;
  mem.Add(1, kTypeValue, "k", "v");
  mem.Add(2, kTypeDeletion, "k", "");

  std::string value;
  Status s;
  ASSERT_TRUE(mem.Get(LookupKey("k", 10), &value, &s));
  EXPECT_TRUE(s.IsNotFound());
}

TEST(MemTable, IteratorOrdered) {
  MemTable mem;
  Random rnd(7);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 1000; i++) {
    std::string key = "key" + std::to_string(rnd.Uniform(10000));
    std::string value = "v" + std::to_string(i);
    mem.Add(static_cast<SequenceNumber>(i + 1), kTypeValue, key, value);
    model[key] = value;  // Latest wins.
  }
  auto iter = mem.NewIterator();
  iter->SeekToFirst();
  std::string prev_user_key;
  std::map<std::string, std::string> seen;
  while (iter->Valid()) {
    ParsedInternalKey parsed;
    ASSERT_TRUE(ParseInternalKey(iter->key(), &parsed));
    std::string uk = parsed.user_key.ToString();
    if (seen.find(uk) == seen.end()) {
      seen[uk] = iter->value().ToString();  // First occurrence is newest.
    }
    EXPECT_LE(prev_user_key, uk);
    prev_user_key = uk;
    iter->Next();
  }
  EXPECT_EQ(seen, model);
}

TEST(MemTable, PayloadAccounting) {
  MemTable mem;
  mem.Add(1, kTypeValue, "abc", "defgh");
  EXPECT_EQ(mem.payload_bytes(), 8u);
  EXPECT_EQ(mem.num_entries(), 1u);
  mem.Add(2, kTypeDeletion, "xy", "");
  EXPECT_EQ(mem.payload_bytes(), 10u);
  EXPECT_GT(mem.ApproximateMemoryUsage(), 0u);
}

}  // namespace
}  // namespace talus
