// White-box unit tests for policy internals, on hand-built Version shapes
// (no engine in the loop): universal's rule precedence, vertical capacity
// math (incl. RocksDB-Tuned dynamic level bytes), cascade request assembly,
// counter encode/decode round-trips.
#include <gtest/gtest.h>

#include <cmath>

#include "policy/horizontal_policy.h"
#include "policy/policy_config.h"
#include "policy/universal_policy.h"
#include "policy/vertical_policy.h"
#include "policy/vertiorizon_policy.h"
#include "workload/generator.h"

namespace talus {
namespace {

FileMetaPtr File(uint64_t number, uint64_t size, const std::string& lo = "a",
                 const std::string& hi = "z") {
  auto f = std::make_shared<FileMeta>();
  f->number = number;
  f->file_size = size;
  f->num_entries = size / 100;
  f->payload_bytes = size * 9 / 10;
  f->smallest = InternalKey(lo, 2, kTypeValue);
  f->largest = InternalKey(hi, 1, kTypeValue);
  return f;
}

SortedRun MakeRun(uint64_t id, uint64_t bytes) {
  SortedRun run;
  run.run_id = id;
  run.files = {File(id * 100, bytes)};
  return run;
}

PolicyContext Ctx(uint64_t buffer = 4096) {
  PolicyContext ctx;
  ctx.buffer_bytes = buffer;
  return ctx;
}

// ---------------------------------------------------------------------------
// UniversalPolicy rule precedence.
// ---------------------------------------------------------------------------

TEST(UniversalRules, BelowTriggerDoesNothing) {
  UniversalPolicy policy(GrowthPolicyConfig::Universal(), Ctx());
  Version v;
  v.EnsureLevels(1);
  v.levels[0].runs = {MakeRun(1, 100), MakeRun(2, 100), MakeRun(3, 100)};
  EXPECT_FALSE(policy.PickCompaction(v).has_value());
}

TEST(UniversalRules, SpaceAmpCompactsEverything) {
  UniversalPolicy policy(GrowthPolicyConfig::Universal(), Ctx());
  Version v;
  v.EnsureLevels(1);
  // Young runs total 900 > 2 × oldest (100): full merge.
  v.levels[0].runs = {MakeRun(1, 300), MakeRun(2, 300), MakeRun(3, 300), MakeRun(4, 100)};
  auto req = policy.PickCompaction(v);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->inputs.size(), 4u);
  EXPECT_EQ(req->reason, "universal-space-amp");
  EXPECT_EQ(req->placement, CompactionRequest::Placement::kReplaceInputs);
}

TEST(UniversalRules, SizeRatioMergesSimilarRuns) {
  UniversalPolicy policy(GrowthPolicyConfig::Universal(), Ctx());
  Version v;
  v.EnsureLevels(1);
  // Oldest run dominates → no space-amp; the three young equal runs merge.
  v.levels[0].runs = {MakeRun(1, 100), MakeRun(2, 100), MakeRun(3, 100), MakeRun(4, 10000)};
  auto req = policy.PickCompaction(v);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->reason, "universal-size-ratio");
  EXPECT_EQ(req->inputs.size(), 3u);
  EXPECT_EQ(req->inputs[0].run_id, 1u);
  EXPECT_EQ(req->inputs[2].run_id, 3u);
}

TEST(UniversalRules, SizeRatioScansStartPositions) {
  UniversalPolicy policy(GrowthPolicyConfig::Universal(), Ctx());
  Version v;
  v.EnsureLevels(1);
  // The window cannot start at run 1 (run 2 is larger); runs 2 and 3 form
  // the first valid ratio window.
  v.levels[0].runs = {MakeRun(1, 100), MakeRun(2, 300), MakeRun(3, 200), MakeRun(4, 50000)};
  auto req = policy.PickCompaction(v);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->reason, "universal-size-ratio");
  ASSERT_EQ(req->inputs.size(), 2u);
  EXPECT_EQ(req->inputs[0].run_id, 2u);
  EXPECT_EQ(req->inputs[1].run_id, 3u);
}

TEST(UniversalRules, RunCountFallsBackToCheapestPair) {
  UniversalPolicy policy(GrowthPolicyConfig::Universal(), Ctx());
  Version v;
  v.EnsureLevels(1);
  // Strictly decreasing sizes: no size-ratio window anywhere; the cheapest
  // adjacent pair is the two newest runs (100+400).
  v.levels[0].runs = {MakeRun(1, 100), MakeRun(2, 400), MakeRun(3, 1600), MakeRun(4, 6400)};
  auto req = policy.PickCompaction(v);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->reason, "universal-run-count");
  ASSERT_EQ(req->inputs.size(), 2u);
  EXPECT_EQ(req->inputs[0].run_id, 1u);
  EXPECT_EQ(req->inputs[1].run_id, 2u);
}

// ---------------------------------------------------------------------------
// VerticalPolicy capacity math.
// ---------------------------------------------------------------------------

TEST(VerticalCapacity, ExponentialDefault) {
  VerticalPolicy policy(GrowthPolicyConfig::VTLevelPart(4), Ctx(1000));
  Version v;
  v.EnsureLevels(4);
  EXPECT_EQ(policy.LevelCapacity(v, 0), 4000u);
  EXPECT_EQ(policy.LevelCapacity(v, 1), 16000u);
  EXPECT_EQ(policy.LevelCapacity(v, 2), 64000u);
}

TEST(VerticalCapacity, DynamicLevelBytesAnchorsToLastLevel) {
  auto config = GrowthPolicyConfig::RocksDBTuned();  // T = 10, dynamic.
  VerticalPolicy policy(config, Ctx(1000));
  Version v;
  v.EnsureLevels(4);
  v.levels[3].runs = {MakeRun(1, 1000000)};  // Bottom holds 1MB.
  // Upper capacities descend by T from the actual bottom size.
  EXPECT_EQ(policy.LevelCapacity(v, 2), 100000u);
  EXPECT_EQ(policy.LevelCapacity(v, 1), 10000u);
  // Floored at B·T.
  EXPECT_EQ(policy.LevelCapacity(v, 0), 10000u);
}

TEST(VerticalPick, OldestSmallestSeqFirstHonored) {
  auto config = GrowthPolicyConfig::RocksDBTuned();
  VerticalPolicy policy(config, Ctx(100));
  Version v;
  v.EnsureLevels(2);
  SortedRun run;
  run.run_id = 9;
  auto f1 = File(1, 5000, "a", "f");
  auto f2 = File(2, 5000, "g", "p");
  auto f3 = File(3, 5000, "q", "z");
  f1->oldest_seq = 30;
  f2->oldest_seq = 10;  // Oldest data: must be picked first.
  f3->oldest_seq = 20;
  run.files = {f1, f2, f3};
  v.levels[0].runs = {run};

  auto req = policy.PickCompaction(v);
  ASSERT_TRUE(req.has_value());
  ASSERT_EQ(req->inputs[0].file_numbers.size(), 1u);
  EXPECT_EQ(req->inputs[0].file_numbers[0], 2u);
}

// ---------------------------------------------------------------------------
// Cascade request assembly.
// ---------------------------------------------------------------------------

TEST(CascadeRequest, CollectsAllRunsInRange) {
  Version v;
  v.EnsureLevels(4);
  v.levels[0].runs = {MakeRun(1, 100), MakeRun(2, 100)};
  v.levels[1].runs = {MakeRun(3, 400)};
  v.levels[2].runs = {MakeRun(4, 1600)};

  auto req = MakeCascadeRequest(v, 0, 1, /*merge_into_existing=*/true, "t");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->inputs.size(), 3u);  // Levels 0..1: runs 1, 2, 3.
  EXPECT_EQ(req->output_level, 2);
  ASSERT_TRUE(req->output_run_id.has_value());
  EXPECT_EQ(*req->output_run_id, 4u);
}

TEST(CascadeRequest, NewRunWhenTieringOrEmptyTarget) {
  Version v;
  v.EnsureLevels(3);
  v.levels[0].runs = {MakeRun(1, 100)};
  v.levels[1].runs = {MakeRun(2, 400)};

  auto tier = MakeCascadeRequest(v, 0, 0, /*merge_into_existing=*/false, "t");
  ASSERT_TRUE(tier.has_value());
  EXPECT_FALSE(tier->output_run_id.has_value());

  auto empty_target =
      MakeCascadeRequest(v, 0, 1, /*merge_into_existing=*/true, "t");
  ASSERT_TRUE(empty_target.has_value());
  EXPECT_EQ(empty_target->output_level, 2);
  EXPECT_FALSE(empty_target->output_run_id.has_value());  // L2 is empty.
}

TEST(CascadeRequest, EmptyLevelsYieldNothing) {
  Version v;
  v.EnsureLevels(3);
  EXPECT_FALSE(
      MakeCascadeRequest(v, 0, 1, true, "t").has_value());
}

// ---------------------------------------------------------------------------
// Counter machinery and state round-trips.
// ---------------------------------------------------------------------------

TEST(HorizontalCountersUnit, LevelingTriggerPrefix) {
  HorizontalCounters counters(3, /*tiering=*/false, 0, 0);
  // Flush 1: [1,0,0] → L0 fires → [0,1,0] → L1 fires (1>0) → [0,0,1]:
  // Algorithm 1 cascades all the way on the very first flush.
  EXPECT_EQ(counters.OnFlush(), 1);
  EXPECT_EQ(counters.counters()[2], 1u);
  // Flush 2: [1,0,1] → L0 fires → [0,1,1]; L1: 1 > 1 fails → end = 0.
  EXPECT_EQ(counters.OnFlush(), 0);
  // Flush 3: [1,1,1] → no trigger.
  EXPECT_EQ(counters.OnFlush(), -1);
  // Flush 4: [2,1,1] → cascade through levels 0 and 1 → [0,0,2].
  EXPECT_EQ(counters.OnFlush(), 1);
  EXPECT_EQ(counters.counters()[2], 2u);
}

TEST(HorizontalCountersUnit, TieringCountdown) {
  HorizontalCounters counters(2, /*tiering=*/true, 3, 0);
  EXPECT_EQ(counters.OnFlush(), -1);  // C1: 3→2.
  EXPECT_EQ(counters.OnFlush(), -1);  // 2→1.
  EXPECT_EQ(counters.OnFlush(), 0);   // 1→0: compact; C2 3→2, C1 ← 2.
  EXPECT_EQ(counters.counters()[0], 2u);
  EXPECT_EQ(counters.counters()[1], 2u);
  EXPECT_FALSE(counters.Drained());
}

TEST(HorizontalCountersUnit, EncodeDecodeRoundTrip) {
  HorizontalCounters counters(4, true, 7, 2);
  counters.OnFlush();
  counters.OnFlush();
  std::string encoded;
  counters.EncodeTo(&encoded);

  HorizontalCounters decoded(1, false, 0, 0);
  Slice input(encoded);
  ASSERT_TRUE(decoded.DecodeFrom(&input));
  EXPECT_TRUE(input.empty());
  EXPECT_EQ(decoded.levels(), 4);
  EXPECT_EQ(decoded.counters(), counters.counters());
}

TEST(PolicyLabels, PresetsNameThemselves) {
  EXPECT_EQ(GrowthPolicyConfig::VTLevelPart(6).Label(), "VT-Level-Part");
  EXPECT_EQ(GrowthPolicyConfig::VTTierFull(6).Label(), "VT-Tier-Full");
  EXPECT_EQ(GrowthPolicyConfig::RocksDBTuned().Label(), "RocksDB-Tuned");
  EXPECT_EQ(GrowthPolicyConfig::Universal().Label(), "Universal");
  EXPECT_EQ(GrowthPolicyConfig::HRLevel(3).Label(), "HR-Level");
  EXPECT_EQ(GrowthPolicyConfig::HRTier(3).Label(), "HR-Tier");
  EXPECT_EQ(GrowthPolicyConfig::VRNLevel(6).Label(), "VRN-Level");
  EXPECT_EQ(GrowthPolicyConfig::VRNTier(6).Label(), "VRN-Tier");
  EXPECT_EQ(GrowthPolicyConfig::Vertiorizon(6).Label(), "Vertiorizon");
  EXPECT_EQ(GrowthPolicyConfig::LazyLeveling(6, 4, false).Label(),
            "Lazy-Level");
  EXPECT_EQ(GrowthPolicyConfig::LazyLeveling(6, 4, true).Label(),
            "Lazy-Level+VRN");
}

TEST(VertiorizonUnit, CapacityMathUsesEq2Ratio) {
  auto config = GrowthPolicyConfig::VRNTier(8.0);
  config.vrn_initial_capacity_buffers = 10;
  VertiorizonPolicy policy(config, Ctx(1000));
  // T' = 8/√2 ≈ 5.657. V1 cap = 10·1000·T'; V2 = 10·1000·64.
  EXPECT_EQ(policy.capacity_buffers(), 10u);
  EXPECT_EQ(policy.v1_level(), VertiorizonPolicy::kMaxHorizontalLevels);
  EXPECT_EQ(policy.v2_level(), VertiorizonPolicy::kMaxHorizontalLevels + 1);
}

TEST(VertiorizonUnit, StateRoundTripThroughEncodeDecode) {
  auto config = GrowthPolicyConfig::Vertiorizon(6.0);
  VertiorizonPolicy a(config, Ctx(4096));
  const std::string state = a.EncodeState();
  VertiorizonPolicy b(config, Ctx(4096));
  ASSERT_TRUE(b.DecodeState(state));
  EXPECT_EQ(b.horizontal_levels(), a.horizontal_levels());
  EXPECT_EQ(b.horizontal_merge(), a.horizontal_merge());
  EXPECT_EQ(b.capacity_buffers(), a.capacity_buffers());
  EXPECT_EQ(b.EncodeState(), state);
}

}  // namespace
}  // namespace talus
