#include "wal/log_reader.h"
#include "wal/log_writer.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "env/env.h"

namespace talus {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void Write(const std::vector<std::string>& records) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile("/wal", &file).ok());
    wal::LogWriter writer(std::move(file));
    for (const auto& r : records) {
      ASSERT_TRUE(writer.AddRecord(r).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
  }

  std::vector<std::string> ReadAll(bool* corrupt = nullptr) {
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(env_->NewSequentialFile("/wal", &file).ok());
    wal::LogReader reader(std::move(file));
    std::vector<std::string> records;
    std::string record;
    while (reader.ReadRecord(&record)) {
      records.push_back(record);
    }
    if (corrupt != nullptr) *corrupt = reader.corruption_detected();
    return records;
  }

  void Truncate(size_t keep_bytes) {
    // Rewrite the file with only the first keep_bytes bytes.
    std::unique_ptr<SequentialFile> in;
    ASSERT_TRUE(env_->NewSequentialFile("/wal", &in).ok());
    std::string scratch(keep_bytes, '\0');
    Slice data;
    ASSERT_TRUE(in->Read(keep_bytes, &data, scratch.data()).ok());
    std::string contents = data.ToString();
    std::unique_ptr<WritableFile> out;
    ASSERT_TRUE(env_->NewWritableFile("/wal", &out).ok());
    ASSERT_TRUE(out->Append(contents).ok());
    ASSERT_TRUE(out->Close().ok());
  }

  std::unique_ptr<Env> env_ = NewMemEnv();
};

TEST_F(WalTest, RoundTrip) {
  std::vector<std::string> records = {"first", "", "third",
                                      std::string(100000, 'x')};
  Write(records);
  EXPECT_EQ(ReadAll(), records);
}

TEST_F(WalTest, EmptyLog) {
  Write({});
  bool corrupt = false;
  EXPECT_TRUE(ReadAll(&corrupt).empty());
  EXPECT_FALSE(corrupt);
}

TEST_F(WalTest, TornTailStopsCleanly) {
  Write({"aaaa", "bbbb", "cccc"});
  uint64_t full_size;
  ASSERT_TRUE(env_->GetFileSize("/wal", &full_size).ok());
  // Chop into the last record's payload.
  Truncate(full_size - 2);
  bool corrupt = false;
  auto records = ReadAll(&corrupt);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], "aaaa");
  EXPECT_EQ(records[1], "bbbb");
  EXPECT_TRUE(corrupt);
}

TEST_F(WalTest, TornHeaderIsCleanEof) {
  Write({"aaaa", "bbbb"});
  uint64_t full_size;
  ASSERT_TRUE(env_->GetFileSize("/wal", &full_size).ok());
  // Leave 3 bytes of the second record's header.
  Truncate(full_size - ("bbbb" + std::string()).size() - 5);
  bool corrupt = false;
  auto records = ReadAll(&corrupt);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "aaaa");
}

TEST_F(WalTest, CorruptPayloadDetected) {
  Write({"aaaa", "bbbb"});
  // Flip a byte in the first record's payload.
  std::unique_ptr<SequentialFile> in;
  ASSERT_TRUE(env_->NewSequentialFile("/wal", &in).ok());
  std::string scratch(1 << 16, '\0');
  Slice data;
  ASSERT_TRUE(in->Read(1 << 16, &data, scratch.data()).ok());
  std::string contents = data.ToString();
  contents[wal::kHeaderSize] ^= 0xFF;
  std::unique_ptr<WritableFile> out;
  ASSERT_TRUE(env_->NewWritableFile("/wal", &out).ok());
  ASSERT_TRUE(out->Append(contents).ok());
  ASSERT_TRUE(out->Close().ok());

  bool corrupt = false;
  auto records = ReadAll(&corrupt);
  EXPECT_TRUE(records.empty());
  EXPECT_TRUE(corrupt);
}

TEST_F(WalTest, ManyRecords) {
  std::vector<std::string> records;
  for (int i = 0; i < 5000; i++) {
    records.push_back("record-" + std::to_string(i));
  }
  Write(records);
  EXPECT_EQ(ReadAll(), records);
}

}  // namespace
}  // namespace talus
