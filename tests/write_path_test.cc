// Group-commit write pipeline tests (DESIGN.md §2.9): writer-queue
// leadership handoff, N-writer group-commit vs. serial content equality,
// WAL-failure sequence rollback, per-writer status isolation (a poisoned
// batch never fails its group), recovery replay of group-committed records,
// wal_sync_mode accounting, and parallel (CAS) memtable inserts — the last
// two also run under TSan/ASan/UBSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "env/fault_env.h"
#include "lsm/db.h"
#include "mem/memtable.h"
#include "wal/log_writer.h"
#include "workload/generator.h"
#include "write/write_queue.h"

namespace talus {
namespace {

DbOptions Opts(Env* env, const std::string& path) {
  DbOptions opts;
  opts.env = env;
  opts.path = path;
  opts.write_buffer_size = 64 << 10;
  opts.target_file_size = 64 << 10;
  opts.block_size = 1024;
  opts.policy = GrowthPolicyConfig::VTLevelPart(3);
  return opts;
}

std::string Key(uint64_t i) { return workload::FormatKey(i, 16); }

using ScanResult = std::vector<std::pair<std::string, std::string>>;

ScanResult FullScan(DB* db) {
  ScanResult out;
  EXPECT_TRUE(db->Scan("", 1 << 20, &out).ok());
  return out;
}

// ---------------------------------------------------------------- WriteQueue

TEST(WriteQueueTest, SingleWriterLeadsImmediately) {
  write::WriteQueue queue;
  WriteBatch batch;
  batch.Put("k", "v");
  write::Writer w(&batch);
  ASSERT_TRUE(queue.JoinAndAwaitLeadership(&w));
  write::WriteGroup group;
  queue.BuildGroup(&w, 1 << 20, &group);
  ASSERT_EQ(group.writers.size(), 1u);
  EXPECT_EQ(group.writers[0], &w);
  queue.ExitGroup(&group);
}

TEST(WriteQueueTest, LeaderCommitsQueuedFollower) {
  write::WriteQueue queue;
  WriteBatch lead_batch, follow_batch;
  lead_batch.Put("a", "1");
  follow_batch.Put("b", "2");

  write::Writer leader(&lead_batch);
  ASSERT_TRUE(queue.JoinAndAwaitLeadership(&leader));

  std::atomic<bool> follower_led{false};
  std::atomic<bool> follower_done{false};
  Status follower_status;
  std::thread follower([&] {
    write::Writer w(&follow_batch);
    follower_led = queue.JoinAndAwaitLeadership(&w);
    follower_status = w.status;
    follower_done = true;
  });

  // Wait until the follower is visible in the queue, then commit it as part
  // of the leader's group.
  write::WriteGroup group;
  for (int i = 0; i < 10000 && group.writers.size() < 2; i++) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    queue.BuildGroup(&leader, 1 << 20, &group);
  }
  ASSERT_EQ(group.writers.size(), 2u);
  group.writers[1]->status = Status::OK();
  queue.ExitGroup(&group);

  follower.join();
  EXPECT_FALSE(follower_led.load());
  EXPECT_TRUE(follower_done.load());
  EXPECT_TRUE(follower_status.ok());
}

TEST(WriteQueueTest, GroupRespectsByteBudget) {
  write::WriteQueue queue;
  WriteBatch big;
  big.Put("key-big", std::string(1024, 'x'));
  write::Writer leader(&big);
  ASSERT_TRUE(queue.JoinAndAwaitLeadership(&leader));

  std::vector<std::unique_ptr<std::thread>> threads;
  std::vector<std::unique_ptr<write::Writer>> writers;
  std::vector<std::unique_ptr<WriteBatch>> batches;
  for (int i = 0; i < 3; i++) {
    batches.push_back(std::make_unique<WriteBatch>());
    batches.back()->Put("k" + std::to_string(i), std::string(1024, 'y'));
    writers.push_back(std::make_unique<write::Writer>(batches.back().get()));
  }
  for (auto& w : writers) {
    threads.push_back(std::make_unique<std::thread>([&queue, &w] {
      // A follower that gets promoted to leader drains itself (and anything
      // still queued behind it), like the real write path does.
      if (queue.JoinAndAwaitLeadership(w.get())) {
        write::WriteGroup own;
        queue.BuildGroup(w.get(), 1 << 20, &own);
        for (size_t j = 1; j < own.writers.size(); j++) {
          own.writers[j]->status = Status::OK();
        }
        queue.ExitGroup(&own);
      }
    }));
  }
  // Wait for all three followers to queue up behind the leader.
  write::WriteGroup probe;
  for (int i = 0; i < 10000 && probe.writers.size() < 4; i++) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    queue.BuildGroup(&leader, 1 << 20, &probe);
  }
  ASSERT_EQ(probe.writers.size(), 4u);

  // A ~2.1 KB budget fits the leader plus one 1 KB follower only; the
  // writers left behind lead their own follow-up groups and drain.
  write::WriteGroup group;
  queue.BuildGroup(&leader, 2100, &group);
  ASSERT_EQ(group.writers.size(), 2u);
  group.writers[1]->status = Status::OK();
  queue.ExitGroup(&group);
  for (auto& t : threads) t->join();
}

// -------------------------------------------------------- DB write pipeline

TEST(GroupCommit, SingleWriterCountersAndContent) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Opts(env.get(), "/gc1"), &db).ok());
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db->Delete(Key(7)).ok());

  const EngineStats& stats = db->stats();
  EXPECT_EQ(stats.puts, 100u);
  EXPECT_EQ(stats.deletes, 1u);

  const metrics::GroupCommitStats gc = db->GetGroupCommitStats();
  EXPECT_EQ(gc.group_commits, 101u);
  EXPECT_EQ(gc.batches_committed, 101u);
  EXPECT_DOUBLE_EQ(gc.group_size_avg, 1.0);

  std::string value;
  ASSERT_TRUE(db->Get(Key(42), &value).ok());
  EXPECT_EQ(value, "v42");
  EXPECT_TRUE(db->Get(Key(7), &value).IsNotFound());

  std::string props;
  ASSERT_TRUE(db->GetProperty("talus.stats", &props));
  EXPECT_NE(props.find("group_commits=101"), std::string::npos);
  EXPECT_NE(props.find("group_size_avg=1.00"), std::string::npos);
}

// The pre-pipeline engine counted every batch operation — deletes included —
// as a put. The split counters are part of the sequence/counter bugfix.
TEST(GroupCommit, BatchCountsSplitPutsAndDeletes) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Opts(env.get(), "/gc2"), &db).ok());
  WriteBatch batch;
  batch.Put("alpha", "1");
  batch.Put("beta", "2");
  batch.Delete("alpha");
  ASSERT_TRUE(db->Write(batch).ok());
  EXPECT_EQ(db->stats().puts, 2u);
  EXPECT_EQ(db->stats().deletes, 1u);
}

// The pre-pipeline engine advanced last_sequence_ (and counters) before the
// WAL append could fail, leaking sequences on error. A failed group must
// claim nothing — and because the failed record may still have reached the
// log (sync-after-append failures), the error latches: further writes fail
// fast instead of re-claiming the range (which could put two WAL records
// with the same base_seq on disk). Reads and reopen keep working.
TEST(GroupCommit, WalFailureRollsBackSequencesAndLatches) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());
  DbOptions opts = Opts(&env, "/gc3");
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  ASSERT_TRUE(db->Put(Key(1), "one").ok());

  const Snapshot* before = db->GetSnapshot();
  const SequenceNumber seq_before = before->sequence();
  const uint64_t puts_before = db->stats().puts;
  db->ReleaseSnapshot(before);

  env.FailAfterWrites(0);
  Status s = db->Put(Key(2), "two");
  EXPECT_FALSE(s.ok());
  env.Disarm();

  // The failed write claimed nothing: same sequence, same counters.
  const Snapshot* after = db->GetSnapshot();
  EXPECT_EQ(after->sequence(), seq_before);
  db->ReleaseSnapshot(after);
  EXPECT_EQ(db->stats().puts, puts_before);

  // The WAL error is latched: subsequent writes fail fast, reads serve the
  // committed state.
  EXPECT_FALSE(db->Put(Key(3), "three").ok());
  std::string value;
  ASSERT_TRUE(db->Get(Key(1), &value).ok());
  EXPECT_EQ(value, "one");
  EXPECT_TRUE(db->Get(Key(2), &value).IsNotFound());

  // Reopening recovers the pre-failure state and accepts writes again.
  db.reset();
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  ASSERT_TRUE(db->Get(Key(1), &value).ok());
  EXPECT_TRUE(db->Get(Key(2), &value).IsNotFound());
  ASSERT_TRUE(db->Put(Key(3), "three").ok());
  ASSERT_TRUE(db->Get(Key(3), &value).ok());
  EXPECT_EQ(value, "three");
}

// A batch naming an empty key fails with InvalidArgument on its own; the
// rest of its commit group lands normally.
TEST(GroupCommit, PoisonedBatchFailsAloneInGroup) {
  auto env = NewMemEnv();
  DbOptions opts = Opts(env.get(), "/gc4");
  opts.execution_mode = ExecutionMode::kBackground;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());

  constexpr int kGoodThreads = 4;
  constexpr int kOpsPerThread = 500;
  std::atomic<int> poisoned_failures{0};
  std::atomic<int> good_failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kGoodThreads; t++) {
    threads.emplace_back([&db, &good_failures, t] {
      for (int i = 0; i < kOpsPerThread; i++) {
        WriteBatch batch;
        batch.Put(Key(t * kOpsPerThread + i), "good");
        if (!db->Write(batch).ok()) good_failures++;
      }
    });
  }
  threads.emplace_back([&db, &poisoned_failures] {
    for (int i = 0; i < kOpsPerThread; i++) {
      WriteBatch batch;
      batch.Put("", "poison");
      Status s = db->Write(batch);
      if (s.IsInvalidArgument()) poisoned_failures++;
    }
  });
  for (auto& t : threads) t.join();

  EXPECT_EQ(good_failures.load(), 0);
  EXPECT_EQ(poisoned_failures.load(), kOpsPerThread);
  ASSERT_TRUE(db->FlushMemTable().ok());
  EXPECT_EQ(FullScan(db.get()).size(),
            static_cast<size_t>(kGoodThreads * kOpsPerThread));
}

// N concurrent writers through the group-commit pipeline must produce
// exactly the content a serial single-writer run produces (threads own
// disjoint key ranges, so the final state is deterministic).
ScanResult RunConcurrentWorkload(bool parallel_memtable, int writers) {
  auto env = NewMemEnv();
  DbOptions opts = Opts(env.get(), "/gcw");
  opts.execution_mode = ExecutionMode::kBackground;
  opts.parallel_memtable_writes = parallel_memtable;
  std::unique_ptr<DB> db;
  EXPECT_TRUE(DB::Open(opts, &db).ok());

  constexpr int kKeysPerThread = 400;
  constexpr int kRounds = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < writers; t++) {
    threads.emplace_back([&db, t] {
      for (int r = 0; r < kRounds; r++) {
        for (int i = 0; i < kKeysPerThread; i++) {
          const uint64_t k = static_cast<uint64_t>(t) * kKeysPerThread + i;
          if (r == 1 && i % 7 == 0) {
            EXPECT_TRUE(db->Delete(Key(k)).ok());
          } else {
            WriteBatch batch;
            batch.Put(Key(k), "r" + std::to_string(r) + "-" +
                                  std::to_string(k));
            EXPECT_TRUE(db->Write(batch).ok());
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(db->FlushMemTable().ok());
  return FullScan(db.get());
}

TEST(GroupCommit, ConcurrentWritersMatchSerialContent) {
  const ScanResult serial = RunConcurrentWorkload(false, 1);
  // Sanity: a 1-writer serial run has every key at its round-2 value.
  ASSERT_EQ(serial.size(), 400u);
  const ScanResult concurrent = RunConcurrentWorkload(false, 4);
  // 4 writers × the same per-thread workload over 4 disjoint ranges.
  ASSERT_EQ(concurrent.size(), 1600u);
  // Thread 0's range must be bit-identical to the serial run.
  for (size_t i = 0; i < serial.size(); i++) {
    EXPECT_EQ(concurrent[i].first, serial[i].first);
    EXPECT_EQ(concurrent[i].second, serial[i].second);
  }
}

TEST(GroupCommit, ParallelMemtableWritesMatchLeaderApplies) {
  const ScanResult leader_applies = RunConcurrentWorkload(false, 4);
  const ScanResult parallel = RunConcurrentWorkload(true, 4);
  ASSERT_EQ(parallel.size(), leader_applies.size());
  for (size_t i = 0; i < parallel.size(); i++) {
    EXPECT_EQ(parallel[i].first, leader_applies[i].first);
    EXPECT_EQ(parallel[i].second, leader_applies[i].second);
  }
}

// Un-flushed group-committed WAL records replay on Open: every acknowledged
// write survives an abrupt shutdown.
TEST(GroupCommit, RecoveryReplaysGroupCommittedRecords) {
  auto env = NewMemEnv();
  DbOptions opts = Opts(env.get(), "/gc5");
  opts.execution_mode = ExecutionMode::kBackground;
  opts.write_buffer_size = 8 << 20;  // Keep everything in the WAL + memtable.
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 300;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
      threads.emplace_back([&db, t] {
        for (int i = 0; i < kOpsPerThread; i++) {
          const uint64_t k = static_cast<uint64_t>(t) * kOpsPerThread + i;
          ASSERT_TRUE(db->Put(Key(k), "wal-" + std::to_string(k)).ok());
        }
      });
    }
    for (auto& t : threads) t.join();
    // Abrupt shutdown: no flush, recovery must come from the WAL.
  }
  DbOptions reopen = Opts(env.get(), "/gc5");
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(reopen, &db).ok());
  for (uint64_t k = 0; k < kThreads * kOpsPerThread; k++) {
    std::string value;
    ASSERT_TRUE(db->Get(Key(k), &value).ok()) << "lost key " << k;
    EXPECT_EQ(value, "wal-" + std::to_string(k));
  }
}

TEST(GroupCommit, WalSyncModeAccounting) {
  {  // kNone: the write path never syncs.
    auto env = NewMemEnv();
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(Opts(env.get(), "/gc6a"), &db).ok());
    for (int i = 0; i < 50; i++) ASSERT_TRUE(db->Put(Key(i), "v").ok());
    EXPECT_EQ(db->GetGroupCommitStats().wal_syncs, 0u);
  }
  {  // kPerGroup: one sync per commit group.
    auto env = NewMemEnv();
    DbOptions opts = Opts(env.get(), "/gc6b");
    opts.wal_sync_mode = WalSyncMode::kPerGroup;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    for (int i = 0; i < 50; i++) ASSERT_TRUE(db->Put(Key(i), "v").ok());
    const metrics::GroupCommitStats gc = db->GetGroupCommitStats();
    EXPECT_EQ(gc.wal_syncs, gc.group_commits);
  }
  {  // Legacy wal_sync_writes upgrades to kPerGroup.
    auto env = NewMemEnv();
    DbOptions opts = Opts(env.get(), "/gc6c");
    opts.wal_sync_writes = true;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    for (int i = 0; i < 10; i++) ASSERT_TRUE(db->Put(Key(i), "v").ok());
    EXPECT_EQ(db->GetGroupCommitStats().wal_syncs, 10u);
  }
  {  // kInterval with a huge interval: at most the first sync fires.
    auto env = NewMemEnv();
    DbOptions opts = Opts(env.get(), "/gc6d");
    opts.wal_sync_mode = WalSyncMode::kInterval;
    opts.wal_sync_interval_micros = 60ull * 1000 * 1000;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    for (int i = 0; i < 50; i++) ASSERT_TRUE(db->Put(Key(i), "v").ok());
    EXPECT_LE(db->GetGroupCommitStats().wal_syncs, 1u);
  }
}

TEST(GroupCommit, LogWriterTracksUnsyncedBytes) {
  auto env = NewMemEnv();
  ASSERT_TRUE(env->CreateDirIfMissing("/wal").ok());
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env->NewWritableFile("/wal/000001.wal", &file).ok());
  wal::LogWriter writer(std::move(file));
  EXPECT_EQ(writer.unsynced_bytes(), 0u);
  ASSERT_TRUE(writer.AddRecord("hello").ok());
  EXPECT_EQ(writer.unsynced_bytes(), wal::kHeaderSize + 5);
  ASSERT_TRUE(writer.AddRecord("x").ok());
  EXPECT_EQ(writer.unsynced_bytes(), 2 * wal::kHeaderSize + 6);
  ASSERT_TRUE(writer.Sync().ok());
  EXPECT_EQ(writer.unsynced_bytes(), 0u);
}

// Direct MemTable exercise of the CAS skiplist: concurrent inserters with
// disjoint sequence ranges must yield a complete, strictly ordered table.
TEST(GroupCommit, ConcurrentMemtableInsertsStayOrdered) {
  MemTable mem;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&mem, t] {
      for (int i = 0; i < kPerThread; i++) {
        const uint64_t k = static_cast<uint64_t>(t) * kPerThread + i;
        mem.Add(/*seq=*/1 + k, kTypeValue, Key(k), "v" + std::to_string(k));
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(mem.num_entries(), static_cast<uint64_t>(kThreads * kPerThread));
  auto iter = mem.NewIterator();
  iter->SeekToFirst();
  InternalKeyComparator cmp;
  std::string prev;
  uint64_t count = 0;
  while (iter->Valid()) {
    if (count > 0) {
      EXPECT_LT(cmp.Compare(Slice(prev), iter->key()), 0);
    }
    prev.assign(iter->key().data(), iter->key().size());
    count++;
    iter->Next();
  }
  EXPECT_EQ(count, static_cast<uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace talus
