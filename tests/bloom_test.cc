#include "filter/bloom.h"
#include "filter/filter_allocator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace talus {
namespace {

std::string Key(int i) { return "key" + std::to_string(i); }

TEST(Bloom, NoFalseNegatives) {
  BloomFilterBuilder builder(10.0);
  for (int i = 0; i < 10000; i++) builder.AddKey(Key(i));
  std::string data = builder.Finish();
  BloomFilterReader reader{Slice(data)};
  for (int i = 0; i < 10000; i++) {
    EXPECT_TRUE(reader.KeyMayMatch(Key(i))) << i;
  }
}

TEST(Bloom, FalsePositiveRateNearTheory) {
  BloomFilterBuilder builder(10.0);
  for (int i = 0; i < 20000; i++) builder.AddKey(Key(i));
  std::string data = builder.Finish();
  BloomFilterReader reader{Slice(data)};
  int fp = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; i++) {
    if (reader.KeyMayMatch(Key(1000000 + i))) fp++;
  }
  const double rate = static_cast<double>(fp) / probes;
  const double expected = BloomFalsePositiveRate(10.0);  // ~0.0082
  EXPECT_LT(rate, expected * 3 + 0.01);
  EXPECT_GT(rate, 0.0);  // A 10-bpk filter over 20k keys should not be perfect.
}

class BloomBpkTest : public ::testing::TestWithParam<double> {};

TEST_P(BloomBpkTest, FprDecreasesWithBits) {
  const double bpk = GetParam();
  BloomFilterBuilder builder(bpk);
  for (int i = 0; i < 5000; i++) builder.AddKey(Key(i));
  std::string data = builder.Finish();
  BloomFilterReader reader{Slice(data)};
  int fp = 0;
  for (int i = 0; i < 5000; i++) {
    if (reader.KeyMayMatch(Key(900000 + i))) fp++;
  }
  const double rate = fp / 5000.0;
  // Within a loose factor of the theoretical rate.
  EXPECT_LT(rate, BloomFalsePositiveRate(bpk) * 4 + 0.02) << "bpk=" << bpk;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BloomBpkTest,
                         ::testing::Values(2.0, 4.0, 5.0, 8.0, 12.0, 16.0,
                                           20.0));

TEST(Bloom, EmptyFilterMatchesNothingClaimed) {
  BloomFilterBuilder builder(10.0);
  std::string data = builder.Finish();
  BloomFilterReader reader{Slice(data)};
  // An empty filter has all bits zero: everything is definitely absent.
  EXPECT_FALSE(reader.KeyMayMatch("anything"));
}

TEST(BlockedBloom, NoFalseNegatives) {
  BlockedBloomFilterBuilder builder(10.0);
  for (int i = 0; i < 10000; i++) builder.AddKey(Key(i));
  std::string data = builder.Finish();
  BloomFilterReader reader{Slice(data)};
  for (int i = 0; i < 10000; i++) {
    EXPECT_TRUE(reader.KeyMayMatch(Key(i))) << i;
  }
}

TEST(BlockedBloom, EncodingTagged) {
  BlockedBloomFilterBuilder builder(10.0);
  for (int i = 0; i < 100; i++) builder.AddKey(Key(i));
  std::string data = builder.Finish();
  ASSERT_GE(data.size(), 2u + 64u);
  // [num_blocks x 64][num_probes][tag]: blocks are 64-byte aligned and the
  // trailing tag steers reader dispatch.
  EXPECT_EQ((data.size() - 2) % 64, 0u);
  EXPECT_EQ(static_cast<unsigned char>(data.back()), 0xb1);
  // A legacy reader interprets the last byte as a probe count and treats
  // anything > 30 as maybe-present — so old code degrades to filter-less
  // reads on blocked filters, never a false negative.
  EXPECT_GT(static_cast<unsigned char>(data.back()), 30);
}

// Both variants should track the theoretical FPR at 10 bits/key. The
// blocked variant trades a little accuracy for one-cache-line probes; allow
// it a looser (but still same-order) band.
TEST(BlockedBloom, FalsePositiveRateNearTheory) {
  for (const FilterVariant variant :
       {FilterVariant::kLegacy, FilterVariant::kBlocked}) {
    auto builder = NewFilterBuilder(variant, 10.0);
    for (int i = 0; i < 20000; i++) builder->AddKey(Key(i));
    std::string data = builder->Finish();
    BloomFilterReader reader{Slice(data)};
    int fp = 0;
    const int probes = 20000;
    for (int i = 0; i < probes; i++) {
      if (reader.KeyMayMatch(Key(1000000 + i))) fp++;
    }
    const double rate = static_cast<double>(fp) / probes;
    const double expected = BloomFalsePositiveRate(10.0);  // ~0.0082
    EXPECT_LT(rate, expected * 3 + 0.01)
        << "variant=" << static_cast<int>(variant);
    EXPECT_GT(rate, 0.0);
  }
}

// Finish() must reset the builder: a second filter built with the same
// builder must not union in the first filter's keys (the seed leaked
// hashes_ across Finish calls).
TEST(BlockedBloom, BuilderReusableAcrossFinish) {
  for (const FilterVariant variant :
       {FilterVariant::kLegacy, FilterVariant::kBlocked}) {
    auto builder = NewFilterBuilder(variant, 10.0);
    for (int i = 0; i < 2000; i++) builder->AddKey(Key(i));
    std::string first = builder->Finish();
    EXPECT_EQ(builder->NumKeys(), 0u);

    // Second filter over a disjoint key set.
    for (int i = 0; i < 2000; i++) builder->AddKey(Key(500000 + i));
    std::string second = builder->Finish();

    BloomFilterReader second_reader{Slice(second)};
    for (int i = 0; i < 2000; i++) {
      EXPECT_TRUE(second_reader.KeyMayMatch(Key(500000 + i)));
    }
    // If Finish leaked state, every first-batch key would still match the
    // second filter. A fresh 10-bpk filter false-positives on only ~1% of
    // foreign keys.
    int carried = 0;
    for (int i = 0; i < 2000; i++) {
      if (second_reader.KeyMayMatch(Key(i))) carried++;
    }
    EXPECT_LT(carried, 200) << "variant=" << static_cast<int>(variant);
  }
}

TEST(FilterAllocator, StaticUniform) {
  auto alloc = NewStaticFilterAllocator(7.5);
  std::vector<LevelFilterInfo> levels(3);
  EXPECT_DOUBLE_EQ(alloc->BitsForLevel(levels, 0), 7.5);
  EXPECT_DOUBLE_EQ(alloc->BitsForLevel(levels, 2), 7.5);
}

TEST(FilterAllocator, MonkeyGivesSmallLevelsMoreBits) {
  auto alloc = NewMonkeyFilterAllocator(5.0);
  std::vector<LevelFilterInfo> levels(3);
  levels[0].capacity_entries = 1000;
  levels[1].capacity_entries = 10000;
  levels[2].capacity_entries = 100000;
  const double b0 = alloc->BitsForLevel(levels, 0);
  const double b1 = alloc->BitsForLevel(levels, 1);
  const double b2 = alloc->BitsForLevel(levels, 2);
  EXPECT_GT(b0, b1);
  EXPECT_GT(b1, b2);
  // Memory budget approximately preserved.
  const double total_budget = 5.0 * (1000 + 10000 + 100000);
  const double spent = b0 * 1000 + b1 * 10000 + b2 * 100000;
  EXPECT_NEAR(spent, total_budget, total_budget * 0.05);
}

TEST(FilterAllocator, MonkeyFprProportionalToLevelSize) {
  auto alloc = NewMonkeyFilterAllocator(8.0);
  std::vector<LevelFilterInfo> levels(2);
  levels[0].capacity_entries = 1000;
  levels[1].capacity_entries = 8000;
  const double p0 = BloomFalsePositiveRate(alloc->BitsForLevel(levels, 0));
  const double p1 = BloomFalsePositiveRate(alloc->BitsForLevel(levels, 1));
  // Lagrangian optimum: p_i ∝ n_i.
  EXPECT_NEAR(p1 / p0, 8.0, 0.5);
}

TEST(FilterAllocator, DynamicUsesExpectedFill) {
  auto monkey = NewMonkeyFilterAllocator(5.0);
  auto dynamic = NewDynamicFilterAllocator(5.0);
  std::vector<LevelFilterInfo> levels(2);
  levels[0].capacity_entries = 10000;
  levels[0].expected_fill = 0.5;  // Emptied by full compactions.
  levels[0].current_entries = 100;
  levels[1].capacity_entries = 60000;
  levels[1].expected_fill = 1.0;
  levels[1].current_entries = 60000;
  // The dynamic layout sees a smaller effective level 0, so it grants level
  // 0 MORE bits per key than capacity-based Monkey does.
  EXPECT_GT(dynamic->BitsForLevel(levels, 0), monkey->BitsForLevel(levels, 0));
}

TEST(FilterAllocator, ZeroBudgetGivesZeroBits) {
  auto alloc = NewMonkeyFilterAllocator(0.0);
  std::vector<LevelFilterInfo> levels(2);
  levels[0].capacity_entries = 100;
  levels[1].capacity_entries = 1000;
  EXPECT_EQ(alloc->BitsForLevel(levels, 0), 0.0);
}

}  // namespace
}  // namespace talus
