// Background execution subsystem tests: thread-pool ordering/shutdown,
// scheduler prioritization and status tracking, stall-controller thresholds,
// and whole-engine inline-vs-background equivalence under concurrent
// writers (the acceptance bar for DESIGN.md §2).
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/job_scheduler.h"
#include "exec/stall_controller.h"
#include "exec/thread_pool.h"
#include "lsm/db.h"
#include "util/random.h"
#include "workload/generator.h"

namespace talus {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  exec::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(pool.Submit([&counter] { counter++; }));
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  // One worker and a slow first task: the rest must still run by the time
  // Shutdown() returns.
  exec::ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.Submit([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  for (int i = 0; i < 10; i++) {
    pool.Submit([&counter] { counter++; });
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, RejectsTasksAfterShutdown) {
  exec::ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, SingleThreadPreservesFifoOrder) {
  exec::ThreadPool pool(1);
  std::vector<int> order;
  std::mutex mu;
  for (int i = 0; i < 20; i++) {
    pool.Submit([&order, &mu, i] {
      std::lock_guard<std::mutex> l(mu);
      order.push_back(i);
    });
  }
  pool.Shutdown();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; i++) EXPECT_EQ(order[i], i);
}

// ------------------------------------------------------------- JobScheduler

TEST(JobSchedulerTest, FlushJobsDispatchBeforeCompactions) {
  // Block the single worker, queue a compaction then a flush: the flush
  // must run first because every dispatch drains the flush queue first.
  exec::ThreadPool pool(1);
  exec::JobScheduler sched(&pool);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::vector<std::string> order;

  sched.Schedule(exec::JobType::kCompaction, [&]() {
    std::unique_lock<std::mutex> l(mu);
    cv.wait(l, [&] { return release; });
    order.push_back("blocker");
    return Status::OK();
  });
  // Give the worker time to pick up the blocker so the next two jobs queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  sched.Schedule(exec::JobType::kCompaction, [&]() {
    std::lock_guard<std::mutex> l(mu);
    order.push_back("compaction");
    return Status::OK();
  });
  sched.Schedule(exec::JobType::kFlush, [&]() {
    std::lock_guard<std::mutex> l(mu);
    order.push_back("flush");
    return Status::OK();
  });

  {
    std::lock_guard<std::mutex> l(mu);
    release = true;
  }
  cv.notify_all();
  sched.WaitIdle();

  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "blocker");
  EXPECT_EQ(order[1], "flush");
  EXPECT_EQ(order[2], "compaction");
}

TEST(JobSchedulerTest, TracksJobStatesAndErrors) {
  exec::ThreadPool pool(2);
  exec::JobScheduler sched(&pool);

  auto ok_id = sched.Schedule(exec::JobType::kFlush,
                              [] { return Status::OK(); });
  auto bad_id = sched.Schedule(exec::JobType::kCompaction, [] {
    return Status::IOError("disk on fire");
  });
  ASSERT_NE(ok_id, exec::JobScheduler::kInvalidJobId);
  ASSERT_NE(bad_id, exec::JobScheduler::kInvalidJobId);
  sched.WaitIdle();

  EXPECT_EQ(sched.GetState(ok_id), exec::JobState::kDone);
  EXPECT_EQ(sched.GetState(bad_id), exec::JobState::kFailed);
  EXPECT_TRUE(sched.first_error().IsIOError());

  auto stats = sched.GetStats();
  EXPECT_EQ(stats.completed[0], 1u);
  EXPECT_EQ(stats.failed[1], 1u);
  EXPECT_TRUE(stats.idle());
}

TEST(JobSchedulerTest, ShutdownRejectsNewJobs) {
  exec::ThreadPool pool(1);
  exec::JobScheduler sched(&pool);
  sched.Shutdown();
  EXPECT_EQ(sched.Schedule(exec::JobType::kFlush, [] { return Status::OK(); }),
            exec::JobScheduler::kInvalidJobId);
}

// ---------------------------------------------------------- StallController

TEST(StallControllerTest, ThresholdsDriveDecisions) {
  exec::StallConfig config;
  config.max_immutable_memtables = 2;
  config.l0_slowdown_runs = 4;
  config.l0_stop_runs = 8;
  exec::StallController ctl(config);

  // Healthy state.
  EXPECT_EQ(ctl.Decide(0, 0), exec::StallDecision::kNone);
  EXPECT_EQ(ctl.Decide(0, 3), exec::StallDecision::kNone);
  // One switch away from the memtable cap → slowdown.
  EXPECT_EQ(ctl.Decide(1, 0), exec::StallDecision::kSlowdown);
  // L0 slowdown threshold.
  EXPECT_EQ(ctl.Decide(0, 4), exec::StallDecision::kSlowdown);
  EXPECT_EQ(ctl.Decide(0, 7), exec::StallDecision::kSlowdown);
  // Hard stops.
  EXPECT_EQ(ctl.Decide(2, 0), exec::StallDecision::kStop);
  EXPECT_EQ(ctl.Decide(3, 0), exec::StallDecision::kStop);
  EXPECT_EQ(ctl.Decide(0, 8), exec::StallDecision::kStop);
}

TEST(StallControllerTest, SanitizesDegenerateConfig) {
  exec::StallConfig config;
  config.max_immutable_memtables = 0;  // Clamped to 1.
  config.l0_slowdown_runs = 10;
  config.l0_stop_runs = 5;  // Below slowdown: pushed above it.
  exec::StallController ctl(config);
  // max_immutable_memtables == 1 must not put every write in slowdown.
  EXPECT_EQ(ctl.Decide(0, 0), exec::StallDecision::kNone);
  EXPECT_EQ(ctl.Decide(1, 0), exec::StallDecision::kStop);
  EXPECT_EQ(ctl.Decide(0, 10), exec::StallDecision::kSlowdown);
  EXPECT_EQ(ctl.Decide(0, 11), exec::StallDecision::kStop);
}

TEST(StallControllerTest, ExposesSanitizedConfig) {
  exec::StallConfig config;
  config.max_immutable_memtables = 0;
  config.l0_slowdown_runs = 6;
  config.l0_stop_runs = 3;
  config.slowdown_delay_micros = 777;  // The DB sleeps on this value.
  exec::StallController ctl(config);
  EXPECT_EQ(ctl.config().max_immutable_memtables, 1u);
  EXPECT_EQ(ctl.config().l0_stop_runs, 7u);
  EXPECT_EQ(ctl.config().slowdown_delay_micros, 777u);
}

// ------------------------------------------------------- DB background mode

DbOptions TestOptions(Env* env, ExecutionMode mode,
                      const GrowthPolicyConfig& policy) {
  DbOptions opts;
  opts.env = env;
  opts.path = "/db";
  opts.write_buffer_size = 4 << 10;  // Tiny buffer: many flushes.
  opts.target_file_size = 4 << 10;
  opts.block_size = 1024;
  opts.block_cache_bytes = 64 << 10;
  opts.policy = policy;
  opts.execution_mode = mode;
  opts.num_background_threads = 2;
  opts.slowdown_delay_micros = 100;  // Keep tests fast.
  return opts;
}

// Deterministic per-thread op stream over a disjoint key range: the final
// per-key state is independent of cross-thread interleaving, so inline and
// background runs must converge to the same database.
void ApplyWorkerOps(DB* db, int worker, int ops) {
  Random rnd(1000 + worker);
  const int base = worker * 1000;
  for (int i = 0; i < ops; i++) {
    std::string key = workload::FormatKey(base + rnd.Uniform(300), 16);
    const uint32_t action = rnd.Uniform(10);
    if (action < 7) {
      ASSERT_TRUE(
          db->Put(key, "v-" + std::to_string(worker) + "-" +
                           std::to_string(i))
              .ok());
    } else if (action < 8) {
      ASSERT_TRUE(db->Delete(key).ok());
    } else if (action < 9) {
      std::string value;
      Status s = db->Get(key, &value);
      ASSERT_TRUE(s.ok() || s.IsNotFound());
    } else {
      std::vector<std::pair<std::string, std::string>> out;
      ASSERT_TRUE(db->Scan(key, 10, &out).ok());
    }
  }
}

std::vector<std::pair<std::string, std::string>> FullScan(DB* db) {
  std::vector<std::pair<std::string, std::string>> out;
  EXPECT_TRUE(db->Scan(Slice(""), 1000000, &out).ok());
  return out;
}

struct NamedPolicy {
  const char* name;
  GrowthPolicyConfig config;
};

std::vector<NamedPolicy> EquivalencePolicies() {
  return {
      {"VT-Level-Full", GrowthPolicyConfig::VTLevelFull(3)},
      {"VT-Tier-Full", GrowthPolicyConfig::VTTierFull(3)},
      {"Lazy-Level", GrowthPolicyConfig::LazyLeveling(3, 4, false)},
  };
}

class ExecEquivalenceTest : public ::testing::TestWithParam<NamedPolicy> {};

TEST_P(ExecEquivalenceTest, BackgroundMatchesInlineUnderConcurrency) {
  constexpr int kWorkers = 4;
  constexpr int kOpsPerWorker = 1500;

  // Inline reference: the same per-worker streams applied sequentially.
  auto inline_env = NewMemEnv();
  std::unique_ptr<DB> inline_db;
  ASSERT_TRUE(DB::Open(TestOptions(inline_env.get(), ExecutionMode::kInline,
                                   GetParam().config),
                       &inline_db)
                  .ok());
  for (int w = 0; w < kWorkers; w++) {
    ApplyWorkerOps(inline_db.get(), w, kOpsPerWorker);
  }

  // Background run: four concurrent writer threads.
  auto bg_env = NewMemEnv();
  std::unique_ptr<DB> bg_db;
  ASSERT_TRUE(DB::Open(TestOptions(bg_env.get(), ExecutionMode::kBackground,
                                   GetParam().config),
                       &bg_db)
                  .ok());
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; w++) {
    workers.emplace_back(
        [&bg_db, w] { ApplyWorkerOps(bg_db.get(), w, kOpsPerWorker); });
  }
  for (auto& t : workers) t.join();
  ASSERT_TRUE(bg_db->FlushMemTable().ok());

  // Key-for-key equality of the full scans.
  auto expect = FullScan(inline_db.get());
  auto got = FullScan(bg_db.get());
  ASSERT_EQ(expect.size(), got.size()) << GetParam().name;
  for (size_t i = 0; i < expect.size(); i++) {
    EXPECT_EQ(expect[i].first, got[i].first) << GetParam().name;
    EXPECT_EQ(expect[i].second, got[i].second) << GetParam().name;
  }

  // The background machinery really ran.
  const EngineStats& stats = bg_db->stats();
  EXPECT_GT(stats.memtable_switches, 0u) << GetParam().name;
  EXPECT_GT(stats.bg_flushes, 0u) << GetParam().name;
  EXPECT_GT(stats.flushes, 0u) << GetParam().name;

  std::string exec_info;
  ASSERT_TRUE(bg_db->GetProperty("talus.exec", &exec_info));
  EXPECT_NE(exec_info.find("mode=background"), std::string::npos);
  std::string stats_str;
  ASSERT_TRUE(bg_db->GetProperty("talus.stats", &stats_str));
  EXPECT_NE(stats_str.find("bg_flushes="), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Policies, ExecEquivalenceTest,
                         ::testing::ValuesIn(EquivalencePolicies()),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(ExecDbTest, ConcurrentReadersSeeConsistentState) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(TestOptions(env.get(), ExecutionMode::kBackground,
                                   GrowthPolicyConfig::VTTierFull(3)),
                       &db)
                  .ok());

  std::atomic<bool> done{false};
  // Writer thread: monotonically increasing value for a hot key.
  std::thread writer([&] {
    for (int i = 0; i < 4000; i++) {
      ASSERT_TRUE(db->Put(workload::FormatKey(i % 200, 16),
                          std::to_string(i))
                      .ok());
    }
    done = true;
  });
  // Reader threads: every Get either misses or returns a well-formed value.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; r++) {
    readers.emplace_back([&, r] {
      Random rnd(7 + r);
      while (!done) {
        std::string value;
        Status s = db->Get(workload::FormatKey(rnd.Uniform(200), 16), &value);
        ASSERT_TRUE(s.ok() || s.IsNotFound());
        if (s.ok()) ASSERT_FALSE(value.empty());
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  ASSERT_TRUE(db->FlushMemTable().ok());

  auto rows = FullScan(db.get());
  EXPECT_EQ(rows.size(), 200u);
}

TEST(ExecDbTest, SnapshotsPinStateAcrossBackgroundFlushes) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(TestOptions(env.get(), ExecutionMode::kBackground,
                                   GrowthPolicyConfig::VTLevelFull(3)),
                       &db)
                  .ok());
  ASSERT_TRUE(db->Put("pinned", "before").ok());
  const Snapshot* snap = db->GetSnapshot();

  // Overwrite through several background flush cycles.
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db->Put(workload::FormatKey(i % 500, 16), "filler").ok());
  }
  ASSERT_TRUE(db->Put("pinned", "after").ok());
  ASSERT_TRUE(db->FlushMemTable().ok());

  std::string value;
  ASSERT_TRUE(db->Get("pinned", &value, snap).ok());
  EXPECT_EQ(value, "before");
  ASSERT_TRUE(db->Get("pinned", &value).ok());
  EXPECT_EQ(value, "after");
  db->ReleaseSnapshot(snap);
}

TEST(ExecDbTest, FlushMemTableDrainsBackgroundWork) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(TestOptions(env.get(), ExecutionMode::kBackground,
                                   GrowthPolicyConfig::VTLevelFull(3)),
                       &db)
                  .ok());
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(
        db->Put(workload::FormatKey(i % 400, 16), std::to_string(i)).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  // After the drain, nothing is buffered: everything lives in the tree.
  EXPECT_EQ(db->stats().flushes, db->stats().bg_flushes);
  std::string exec_info;
  ASSERT_TRUE(db->GetProperty("talus.exec", &exec_info));
  EXPECT_NE(exec_info.find("imm_queued=0"), std::string::npos);
}

TEST(ExecDbTest, ReopenAfterBackgroundModeRecovers) {
  auto env = NewMemEnv();
  GrowthPolicyConfig policy = GrowthPolicyConfig::VTTierFull(3);
  std::map<std::string, std::string> model;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(TestOptions(env.get(), ExecutionMode::kBackground,
                                     policy),
                         &db)
                    .ok());
    Random rnd(42);
    for (int i = 0; i < 2500; i++) {
      std::string key = workload::FormatKey(rnd.Uniform(600), 16);
      std::string value = "val-" + std::to_string(i);
      ASSERT_TRUE(db->Put(key, value).ok());
      model[key] = value;
    }
    // Destructor drains background jobs; unflushed tail stays in the WAL.
  }
  {
    // Reopen in inline mode: recovery must replay every live WAL.
    std::unique_ptr<DB> db;
    ASSERT_TRUE(
        DB::Open(TestOptions(env.get(), ExecutionMode::kInline, policy), &db)
            .ok());
    for (const auto& [k, v] : model) {
      std::string value;
      ASSERT_TRUE(db->Get(k, &value).ok()) << k;
      EXPECT_EQ(value, v);
    }
  }
}

TEST(ExecDbTest, InlineModeReportsInlineExecProperty) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(TestOptions(env.get(), ExecutionMode::kInline,
                                   GrowthPolicyConfig::VTLevelFull(3)),
                       &db)
                  .ok());
  ASSERT_TRUE(db->Put("k", "v").ok());
  std::string value;
  ASSERT_TRUE(db->GetProperty("talus.exec", &value));
  EXPECT_EQ(value, "mode=inline");
  EXPECT_EQ(db->stats().memtable_switches, 0u);
  EXPECT_EQ(db->stats().bg_flushes, 0u);
}

}  // namespace
}  // namespace talus
