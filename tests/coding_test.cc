#include "util/coding.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace talus {
namespace {

TEST(Coding, Fixed32RoundTrip) {
  std::string s;
  for (uint32_t v = 0; v < 100000; v += 7777) {
    PutFixed32(&s, v);
  }
  const char* p = s.data();
  for (uint32_t v = 0; v < 100000; v += 7777) {
    EXPECT_EQ(DecodeFixed32(p), v);
    p += 4;
  }
}

TEST(Coding, Fixed64RoundTrip) {
  std::string s;
  std::vector<uint64_t> values = {0, 1, 255, 256, 1ull << 32, 1ull << 63,
                                  std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) PutFixed64(&s, v);
  Slice input(s);
  for (uint64_t v : values) {
    uint64_t decoded;
    ASSERT_TRUE(GetFixed64(&input, &decoded));
    EXPECT_EQ(decoded, v);
  }
  EXPECT_TRUE(input.empty());
}

TEST(Coding, Varint32RoundTrip) {
  std::string s;
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 32; i++) {
    values.push_back(1u << i);
    values.push_back((1u << i) - 1);
    values.push_back((1u << i) + 1);
  }
  for (uint32_t v : values) PutVarint32(&s, v);
  Slice input(s);
  for (uint32_t v : values) {
    uint32_t decoded;
    ASSERT_TRUE(GetVarint32(&input, &decoded));
    EXPECT_EQ(decoded, v);
  }
  EXPECT_TRUE(input.empty());
}

TEST(Coding, Varint64RoundTrip) {
  std::string s;
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                  std::numeric_limits<uint64_t>::max()};
  for (uint64_t i = 0; i < 64; i++) values.push_back(1ull << i);
  for (uint64_t v : values) PutVarint64(&s, v);
  Slice input(s);
  for (uint64_t v : values) {
    uint64_t decoded;
    ASSERT_TRUE(GetVarint64(&input, &decoded));
    EXPECT_EQ(decoded, v);
  }
}

TEST(Coding, VarintLengthMatchesEncoding) {
  for (uint64_t i = 0; i < 64; i++) {
    const uint64_t v = 1ull << i;
    std::string s;
    PutVarint64(&s, v);
    EXPECT_EQ(static_cast<int>(s.size()), VarintLength(v));
  }
}

TEST(Coding, LengthPrefixedSlice) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice(""));
  PutLengthPrefixedSlice(&s, Slice("abc"));
  PutLengthPrefixedSlice(&s, Slice(std::string(10000, 'x')));
  Slice input(s);
  Slice v;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ(v.ToString(), "");
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ(v.ToString(), "abc");
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ(v.size(), 10000u);
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &v));
}

TEST(Coding, TruncatedVarintFails) {
  std::string s;
  PutVarint64(&s, std::numeric_limits<uint64_t>::max());
  for (size_t keep = 0; keep + 1 < s.size(); keep++) {
    Slice input(s.data(), keep);
    uint64_t v;
    EXPECT_FALSE(GetVarint64(&input, &v)) << "prefix length " << keep;
  }
}

TEST(Slice, CompareAndPrefix) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("abcdef").starts_with(Slice("abc")));
  EXPECT_FALSE(Slice("ab").starts_with(Slice("abc")));
}

}  // namespace
}  // namespace talus
