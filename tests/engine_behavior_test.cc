// Behavioral engine tests: Bloom filters actually cut I/O, the block cache
// actually serves repeats, statistics stay internally consistent, and the
// virtual clock moves the way the cost model says it should.
#include <gtest/gtest.h>

#include <memory>

#include "env/env.h"
#include "lsm/db.h"
#include "util/random.h"
#include "workload/generator.h"

namespace talus {
namespace {

DbOptions BaseOptions(Env* env, const std::string& path) {
  DbOptions opts;
  opts.env = env;
  opts.path = path;
  opts.write_buffer_size = 8 << 10;
  opts.target_file_size = 8 << 10;
  opts.block_size = 1024;
  opts.policy = GrowthPolicyConfig::VTLevelPart(4);
  return opts;
}

void Load(DB* db, int n, size_t value_size = 200) {
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(db->Put(workload::FormatKey(i, 16),
                        workload::MakeValue(i, 0, value_size))
                    .ok());
  }
}

TEST(BloomEffect, NegativeLookupsAvoidIo) {
  for (double bpk : {0.0, 10.0}) {
    auto env = NewMemEnv();
    DbOptions opts = BaseOptions(env.get(), "/bloom");
    opts.bloom_bits_per_key = bpk;
    opts.block_cache_bytes = 0;  // Isolate filter effect.
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    // Even keys only: odd keys are absent but inside every file's range.
    for (int i = 0; i < 2000; i++) {
      ASSERT_TRUE(db->Put(workload::FormatKey(i * 2, 16),
                          workload::MakeValue(i, 0, 200))
                      .ok());
    }

    const uint64_t reads_before = db->stats().data_block_reads;
    std::string value;
    for (int i = 0; i < 1000; i++) {
      EXPECT_TRUE(
          db->Get(workload::FormatKey(i * 2 + 1, 16), &value).IsNotFound());
    }
    const uint64_t reads = db->stats().data_block_reads - reads_before;
    if (bpk > 0) {
      // Filters must suppress nearly every probe for absent keys.
      EXPECT_GT(db->stats().filter_negatives, 800u);
      EXPECT_LT(reads, 400u);
    } else {
      // No filters: every probe of a covering file costs a block read.
      EXPECT_EQ(db->stats().filter_negatives, 0u);
      EXPECT_GT(reads, 800u);
    }
  }
}

TEST(BloomEffect, HigherBitsFewerFalsePositiveReads) {
  uint64_t reads_at[2] = {0, 0};
  int idx = 0;
  for (double bpk : {2.0, 16.0}) {
    auto env = NewMemEnv();
    DbOptions opts = BaseOptions(env.get(), "/bloom2");
    opts.bloom_bits_per_key = bpk;
    opts.block_cache_bytes = 0;
    opts.policy = GrowthPolicyConfig::VTTierFull(4);  // Many runs to probe.
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    Load(db.get(), 3000);

    const uint64_t before = db->stats().data_block_reads;
    std::string value;
    Random rnd(3);
    for (int i = 0; i < 1500; i++) {
      // Absent keys interleaved within the populated range.
      db->Get(workload::FormatKey(100000 + rnd.Uniform(100000), 16), &value);
    }
    reads_at[idx++] = db->stats().data_block_reads - before;
  }
  EXPECT_LT(reads_at[1], reads_at[0] / 2 + 10);
}

TEST(BlockCache, RepeatLookupsHitCache) {
  auto env = NewMemEnv();
  DbOptions opts = BaseOptions(env.get(), "/cache");
  opts.block_cache_bytes = 32 << 20;  // Everything fits.
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  Load(db.get(), 2000);

  std::string value;
  for (int round = 0; round < 3; round++) {
    for (int i = 0; i < 500; i++) {
      ASSERT_TRUE(db->Get(workload::FormatKey(i, 16), &value).ok());
    }
  }
  // After warmup, hits dominate reads.
  EXPECT_GT(db->stats().block_cache_hits, db->stats().data_block_reads);

  // And the virtual clock moved less per op than the uncached baseline.
  auto env2 = NewMemEnv();
  DbOptions opts2 = BaseOptions(env2.get(), "/cache2");
  opts2.block_cache_bytes = 0;
  std::unique_ptr<DB> db2;
  ASSERT_TRUE(DB::Open(opts2, &db2).ok());
  Load(db2.get(), 2000);
  const double c2_start = env2->io_stats()->clock();
  const double c1_start = env->io_stats()->clock();
  for (int round = 0; round < 2; round++) {
    for (int i = 0; i < 500; i++) {
      db->Get(workload::FormatKey(i, 16), &value);
      db2->Get(workload::FormatKey(i, 16), &value);
    }
  }
  const double cached_cost = env->io_stats()->clock() - c1_start;
  const double uncached_cost = env2->io_stats()->clock() - c2_start;
  EXPECT_LT(cached_cost, uncached_cost / 2);
}

TEST(StatsConsistency, CountersAddUp) {
  auto env = NewMemEnv();
  DbOptions opts = BaseOptions(env.get(), "/stats");
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());

  Random rnd(1);
  uint64_t puts = 0, deletes = 0, gets = 0, scans = 0;
  for (int i = 0; i < 3000; i++) {
    const std::string key = workload::FormatKey(rnd.Uniform(600), 16);
    switch (rnd.Uniform(4)) {
      case 0:
      case 1: {
        ASSERT_TRUE(db->Put(key, std::string(150, 'x')).ok());
        puts++;
        break;
      }
      case 2: {
        std::string value;
        db->Get(key, &value);
        gets++;
        break;
      }
      case 3: {
        if (rnd.OneIn(4)) {
          ASSERT_TRUE(db->Delete(key).ok());
          deletes++;
        } else {
          std::vector<std::pair<std::string, std::string>> out;
          ASSERT_TRUE(db->Scan(key, 5, &out).ok());
          scans++;
        }
        break;
      }
    }
  }
  const EngineStats& stats = db->stats();
  EXPECT_EQ(stats.puts, puts);
  EXPECT_EQ(stats.deletes, deletes);
  EXPECT_EQ(stats.gets, gets);
  EXPECT_EQ(stats.scans, scans);
  EXPECT_EQ(stats.gets_found + (stats.gets - stats.gets_found), gets);
  // Level stats sum to the global compaction counters.
  uint64_t level_compactions = 0, level_written = 0;
  for (const auto& ls : stats.level_stats) {
    level_compactions += ls.compactions;
    level_written += ls.bytes_written;
  }
  EXPECT_EQ(level_compactions, stats.compactions);
  EXPECT_EQ(level_written, stats.compaction_bytes_written);
  // Physical writes at least the logical payload (no compression here).
  EXPECT_GE(stats.flush_bytes_written + stats.compaction_bytes_written,
            stats.flush_bytes_written);
  EXPECT_GT(stats.WriteAmplification(), 1.0);
}

TEST(VirtualClock, MonotoneAndChargedPerOp) {
  auto env = NewMemEnv();
  DbOptions opts = BaseOptions(env.get(), "/clock");
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  double last = env->io_stats()->clock();
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db->Put(workload::FormatKey(i, 16), std::string(150, 'c'))
                    .ok());
    const double now = env->io_stats()->clock();
    EXPECT_GT(now, last);  // Every op advances the clock (CPU epsilon).
    last = now;
  }
}

TEST(DataBytes, TracksLivePayloadApproximately) {
  auto env = NewMemEnv();
  DbOptions opts = BaseOptions(env.get(), "/bytes");
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  const int n = 1000;
  const size_t entry = 16 + 200;
  Load(db.get(), n);
  const uint64_t approx = db->ApproximateDataBytes();
  EXPECT_GE(approx, static_cast<uint64_t>(n) * entry);
  // Bounded above by a small multiple (shadowed versions across runs).
  EXPECT_LT(approx, static_cast<uint64_t>(n) * entry * 3);
}

}  // namespace
}  // namespace talus
