#include "format/block.h"
#include "format/block_builder.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "util/random.h"

namespace talus {
namespace {

std::map<std::string, std::string> MakeEntries(int n, int seed = 42) {
  std::map<std::string, std::string> entries;
  Random rnd(seed);
  for (int i = 0; i < n; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%08d", static_cast<int>(rnd.Uniform(1000000)));
    entries[key] = "value-" + std::to_string(rnd.Next());
  }
  return entries;
}

std::string BuildBlock(const std::map<std::string, std::string>& entries,
                       int restart_interval = 16) {
  BlockBuilder builder(restart_interval);
  for (const auto& [k, v] : entries) {
    builder.Add(Slice(k), Slice(v));
  }
  return builder.Finish().ToString();
}

TEST(Block, EmptyBlock) {
  BlockBuilder builder(16);
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator();
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
}

TEST(Block, ForwardIteration) {
  auto entries = MakeEntries(500);
  Block block(BuildBlock(entries));
  auto iter = block.NewIterator();
  iter->SeekToFirst();
  for (const auto& [k, v] : entries) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(iter->key().ToString(), k);
    EXPECT_EQ(iter->value().ToString(), v);
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
}

TEST(Block, BackwardIteration) {
  auto entries = MakeEntries(300);
  Block block(BuildBlock(entries));
  auto iter = block.NewIterator();
  iter->SeekToLast();
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(iter->key().ToString(), it->first);
    EXPECT_EQ(iter->value().ToString(), it->second);
    iter->Prev();
  }
  EXPECT_FALSE(iter->Valid());
}

TEST(Block, SeekExisting) {
  auto entries = MakeEntries(400);
  Block block(BuildBlock(entries));
  auto iter = block.NewIterator();
  for (const auto& [k, v] : entries) {
    iter->Seek(Slice(k));
    ASSERT_TRUE(iter->Valid()) << k;
    EXPECT_EQ(iter->key().ToString(), k);
    EXPECT_EQ(iter->value().ToString(), v);
  }
}

TEST(Block, SeekBetweenKeys) {
  std::map<std::string, std::string> entries = {
      {"b", "1"}, {"d", "2"}, {"f", "3"}};
  Block block(BuildBlock(entries));
  auto iter = block.NewIterator();

  iter->Seek(Slice("a"));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "b");

  iter->Seek(Slice("c"));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "d");

  iter->Seek(Slice("g"));
  EXPECT_FALSE(iter->Valid());
}

class BlockRestartTest : public ::testing::TestWithParam<int> {};

TEST_P(BlockRestartTest, RoundTripAcrossRestartIntervals) {
  auto entries = MakeEntries(257, GetParam());
  Block block(BuildBlock(entries, GetParam()));
  auto iter = block.NewIterator();
  iter->SeekToFirst();
  size_t count = 0;
  for (const auto& [k, v] : entries) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(iter->key().ToString(), k);
    EXPECT_EQ(iter->value().ToString(), v);
    iter->Next();
    count++;
  }
  EXPECT_EQ(count, entries.size());
  // And seek every key.
  for (const auto& [k, v] : entries) {
    iter->Seek(Slice(k));
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(iter->value().ToString(), v);
  }
}

INSTANTIATE_TEST_SUITE_P(RestartIntervals, BlockRestartTest,
                         ::testing::Values(1, 2, 3, 8, 16, 64, 1000));

TEST(Block, CorruptContentsReported) {
  Block block(std::string("\x01\x02", 2));
  auto iter = block.NewIterator();
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  EXPECT_FALSE(iter->status().ok());
}

TEST(Block, PrefixCompressionEffective) {
  // Long shared prefixes should compress well.
  std::map<std::string, std::string> entries;
  const std::string prefix(100, 'p');
  for (int i = 0; i < 100; i++) {
    char suffix[8];
    snprintf(suffix, sizeof(suffix), "%04d", i);
    entries[prefix + suffix] = "v";
  }
  std::string block_data = BuildBlock(entries);
  size_t raw_size = 0;
  for (const auto& [k, v] : entries) raw_size += k.size() + v.size();
  EXPECT_LT(block_data.size(), raw_size / 2);
}

}  // namespace
}  // namespace talus
