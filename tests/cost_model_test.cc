// Tests for the §5.2 cost model and navigator.
#include "tuning/cost_model.h"

#include <gtest/gtest.h>

#include "filter/bloom.h"
#include "theory/schemes.h"

namespace talus {
namespace tuning {
namespace {

HorizontalCostModel Model(uint64_t n = 64, double fpr = 0.1, double P = 4) {
  HorizontalCostModel m;
  m.capacity_buffers = n;
  m.bloom_fpr = fpr;
  m.page_entries = P;
  return m;
}

TEST(CostModel, LevelingPointLookupIsLinearInLevels) {
  const auto m = Model();
  // R_l = ℓ·f.
  EXPECT_DOUBLE_EQ(m.PointLookupCost(HorizontalMerge::kLeveling, 2), 0.2);
  EXPECT_DOUBLE_EQ(m.PointLookupCost(HorizontalMerge::kLeveling, 5), 0.5);
}

TEST(CostModel, TieringUpdateIsLinearInLevels) {
  const auto m = Model();
  // W_t = ℓ/P.
  EXPECT_DOUBLE_EQ(m.UpdateCost(HorizontalMerge::kTiering, 2), 0.5);
  EXPECT_DOUBLE_EQ(m.UpdateCost(HorizontalMerge::kTiering, 4), 1.0);
}

TEST(CostModel, RangeLookupIsPointOverFpr) {
  const auto m = Model();
  for (int l = 2; l <= 5; l++) {
    EXPECT_NEAR(m.RangeLookupCost(HorizontalMerge::kLeveling, l),
                m.PointLookupCost(HorizontalMerge::kLeveling, l) / 0.1,
                1e-12);
    EXPECT_NEAR(m.RangeLookupCost(HorizontalMerge::kTiering, l),
                m.PointLookupCost(HorizontalMerge::kTiering, l) / 0.1,
                1e-12);
  }
}

TEST(CostModel, TieringLookupMatchesLemma51) {
  const auto m = Model(100);
  for (int l = 2; l <= 5; l++) {
    const double expected =
        static_cast<double>(theory::TieringReadCostClosedForm(100, l)) * 0.1 /
        100.0;
    EXPECT_DOUBLE_EQ(m.PointLookupCost(HorizontalMerge::kTiering, l),
                     expected);
  }
}

TEST(CostModel, LevelingUpdateMatchesLemma52) {
  const auto m = Model(100);
  for (int l = 2; l <= 5; l++) {
    const double expected =
        static_cast<double>(theory::LevelingWriteCostClosedForm(100, l)) /
        (100.0 * 4.0);
    EXPECT_DOUBLE_EQ(m.UpdateCost(HorizontalMerge::kLeveling, l), expected);
  }
}

TEST(CostModel, LevelKnobDirectionsMatchSection51) {
  // §5.1: "under the leveling policy, a smaller number of levels leads to
  // better read performance; under the tiering policy, fewer levels result
  // in better write performance."
  const auto m = Model(512);
  // Leveling: reads prefer few levels, writes prefer many.
  EXPECT_LT(m.PointLookupCost(HorizontalMerge::kLeveling, 2),
            m.PointLookupCost(HorizontalMerge::kLeveling, 5));
  EXPECT_GT(m.UpdateCost(HorizontalMerge::kLeveling, 2),
            m.UpdateCost(HorizontalMerge::kLeveling, 5));
  // Tiering: writes prefer few levels, reads prefer many (runs consolidate
  // sooner, so fewer runs are alive on average).
  EXPECT_LT(m.UpdateCost(HorizontalMerge::kTiering, 2),
            m.UpdateCost(HorizontalMerge::kTiering, 5));
  EXPECT_GT(m.PointLookupCost(HorizontalMerge::kTiering, 2),
            m.PointLookupCost(HorizontalMerge::kTiering, 5));
}

class NavigatorPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(NavigatorPropertyTest, SaddleSearchMatchesExhaustive) {
  const auto [n_idx, fpr_idx, mix_idx] = GetParam();
  const uint64_t ns[] = {8, 16, 64, 256, 1024};
  const double fprs[] = {0.3, 0.1, 0.02, 0.005};
  const double ws[] = {0.02, 0.2, 0.5, 0.8, 0.98};

  const auto m = Model(ns[n_idx], fprs[fpr_idx]);
  WorkloadMix mix;
  mix.updates = ws[mix_idx];
  mix.point_lookups = 1.0 - ws[mix_idx];
  const auto fast = Navigate(m, mix);
  const auto slow = NavigateExhaustive(m, mix);
  // Equal cost (the argmin may tie).
  EXPECT_NEAR(fast.cost, slow.cost, 1e-12)
      << "n=" << ns[n_idx] << " fpr=" << fprs[fpr_idx] << " w=" << ws[mix_idx]
      << " fast=" << fast.ToString() << " slow=" << slow.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NavigatorPropertyTest,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 4),
                       ::testing::Range(0, 5)));

TEST(Navigator, ExtremesPickExpectedPolicies) {
  const auto m = Model(256, BloomFalsePositiveRate(5.0));
  WorkloadMix write_only;
  write_only.updates = 1.0;
  write_only.point_lookups = 0.0;
  const auto w = Navigate(m, write_only);
  EXPECT_EQ(w.merge, HorizontalMerge::kTiering);
  EXPECT_EQ(w.levels, 2);  // W_t = ℓ/P is minimized at the smallest ℓ.

  WorkloadMix read_only;
  read_only.updates = 0.0;
  read_only.point_lookups = 1.0;
  const auto r = Navigate(m, read_only);
  // Pure point lookups with Bloom filters: the cheapest design under the
  // cost model; must agree with the exhaustive oracle.
  EXPECT_NEAR(r.cost, NavigateExhaustive(m, read_only).cost, 1e-12);
}

TEST(Navigator, RespectsLevelCap) {
  const auto m = Model(4);  // Tiny capacity: ℓ cannot exceed n.
  WorkloadMix mix;
  const auto r = Navigate(m, mix, 64);
  EXPECT_LE(r.levels, 4);
}

TEST(WorkloadMixTracker, EstimatesObservedMix) {
  WorkloadMixTracker tracker;
  for (int i = 0; i < 700; i++) tracker.RecordUpdate();
  for (int i = 0; i < 200; i++) tracker.RecordPointLookup();
  for (int i = 0; i < 100; i++) tracker.RecordRangeLookup();
  const auto mix = tracker.Estimate();
  EXPECT_NEAR(mix.updates, 0.7, 1e-9);
  EXPECT_NEAR(mix.point_lookups, 0.2, 1e-9);
  EXPECT_NEAR(mix.range_lookups, 0.1, 1e-9);
  tracker.Reset();
  EXPECT_EQ(tracker.total(), 0ull);
}

TEST(WorkloadMixNormalize, DegenerateFallsBackToBalanced) {
  WorkloadMix mix;
  mix.updates = 0;
  mix.point_lookups = 0;
  mix.range_lookups = 0;
  mix.Normalize();
  EXPECT_DOUBLE_EQ(mix.updates, 0.5);
  EXPECT_DOUBLE_EQ(mix.point_lookups, 0.5);
}

}  // namespace
}  // namespace tuning
}  // namespace talus
