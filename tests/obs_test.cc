// Observability subsystem (src/obs/, DESIGN.md §6): the lock-free latency
// recorder, the event ring + JSONL trace, the talus.latency / talus.events
// property surface, and the Prometheus exposition — including the end-to-end
// promise that a write stall is reconstructible from the trace alone.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "env/env.h"
#include "lsm/db.h"
#include "obs/event_ring.h"
#include "obs/latency_recorder.h"
#include "shard/sharded_db.h"
#include "util/histogram.h"
#include "workload/generator.h"

namespace talus {
namespace {

// ------------------------------------------------------------ LatencyRecorder

TEST(LatencyRecorder, RecordsAcrossThreadsAndMergesStripes) {
  obs::LatencyRecorder recorder;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; i++) {
        // Spread across decades so the exponential buckets all see traffic.
        recorder.Record(obs::OpType::kPut, 1 + (i % 1000));
        if (t == 0 && i == 0) recorder.Record(obs::OpType::kGet, 7);
      }
    });
  }
  for (auto& t : threads) t.join();

  const Histogram put = recorder.SnapshotOp(obs::OpType::kPut);
  EXPECT_EQ(put.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(put.Min(), 1.0);
  EXPECT_DOUBLE_EQ(put.Max(), 1000.0);
  EXPECT_GT(put.Percentile(99), put.Median());
  // Exact sum survives the striped counters: 4 * sum(1..1000) * 10.
  EXPECT_NEAR(put.Sum(),
              static_cast<double>(kThreads) * kPerThread * 500.5, 1e-6);

  // Ops never recorded stay empty; the one-shot Get landed exactly once.
  EXPECT_EQ(recorder.SnapshotOp(obs::OpType::kScan).Count(), 0u);
  EXPECT_EQ(recorder.SnapshotOp(obs::OpType::kGet).Count(), 1u);

  const std::vector<Histogram> all = recorder.SnapshotAll();
  ASSERT_EQ(all.size(), static_cast<size_t>(obs::kNumOpTypes));
  EXPECT_EQ(all[static_cast<size_t>(obs::OpType::kPut)].Count(),
            put.Count());
}

TEST(LatencyRecorder, FormatEmitsOneLinePerOp) {
  obs::LatencyRecorder recorder;
  recorder.Record(obs::OpType::kGet, 42);
  const std::string text = recorder.ToString();
  // Every op type appears, count parses, and the op with traffic shows it.
  for (int op = 0; op < obs::kNumOpTypes; op++) {
    const std::string needle =
        std::string("op=") + obs::OpTypeName(static_cast<obs::OpType>(op));
    EXPECT_NE(text.find(needle), std::string::npos) << text;
  }
  EXPECT_NE(text.find("op=get count=1"), std::string::npos) << text;
  EXPECT_NE(text.find("p99_us="), std::string::npos) << text;
  EXPECT_NE(text.find("p999_us="), std::string::npos) << text;
}

// ----------------------------------------------------------------- EventRing

TEST(EventRing, OrderedSnapshotAndWraparound) {
  obs::EventRing ring(4);
  for (uint64_t i = 0; i < 10; i++) {
    ring.Emit(obs::EventType::kGcDelete, /*shard=*/0, /*a=*/i, /*b=*/0);
  }
  EXPECT_EQ(ring.TotalEmitted(), 10u);
  const std::vector<obs::Event> events = ring.Snapshot();
  // Only the newest `capacity` events survive, oldest first, seq monotonic.
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); i++) {
    EXPECT_EQ(events[i].seq, 6 + i);
    EXPECT_EQ(events[i].a, 6 + i);
  }
  const std::string text = ring.ToString();
  EXPECT_NE(text.find("event=gc_delete"), std::string::npos);
  EXPECT_EQ(text.find("seq=5"), std::string::npos);  // Overwritten.
}

TEST(EventRing, JsonCarriesStallCauseByName) {
  obs::Event e{};
  e.micros = 12;
  e.seq = 3;
  e.type = obs::EventType::kStallEnter;
  e.shard = 1;
  e.a = obs::kCauseMemtable;
  e.b = 1;
  const std::string stall = obs::EventRing::ToJson(e);
  EXPECT_NE(stall.find("\"event\": \"stall_enter\""), std::string::npos);
  EXPECT_NE(stall.find("\"cause\": \"memtable\""), std::string::npos);

  e.type = obs::EventType::kFlushEnd;
  e.a = 4096;
  const std::string flush = obs::EventRing::ToJson(e);
  EXPECT_NE(flush.find("\"event\": \"flush_end\""), std::string::npos);
  EXPECT_NE(flush.find("\"a\": 4096"), std::string::npos);
}

TEST(EventRing, TraceFileRoundTrip) {
  const std::string path = "/tmp/talus_obs_trace_unit_" +
                           std::to_string(::getpid()) + ".jsonl";
  {
    obs::EventRing ring(8);
    ASSERT_TRUE(ring.OpenTraceFile(path));
    ring.Emit(obs::EventType::kFlushBegin, 0, 100, 0);
    ring.Emit(obs::EventType::kFlushEnd, 0, 200, 1234);
    ring.CloseTraceFile();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"event\": \"flush_begin\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"event\": \"flush_end\""), std::string::npos);
  // Each line is one self-contained JSON object.
  for (const std::string& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
  }
  std::remove(path.c_str());
}

// ------------------------------------------------------- DB property surface

DbOptions SmallDbOptions(Env* env) {
  DbOptions opts;
  opts.env = env;
  opts.path = "/db";
  opts.write_buffer_size = 16 << 10;
  opts.target_file_size = 16 << 10;
  opts.block_size = 1024;
  opts.policy = GrowthPolicyConfig::VTLevelFull(3);
  return opts;
}

TEST(ObsProperty, TalusLatencyReportsPerOpPercentiles) {
  auto env = NewMemEnv();
  DbOptions opts = SmallDbOptions(env.get());
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(
        db->Put(workload::FormatKey(i, 16), std::string(64, 'v')).ok());
  }
  std::string value;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db->Get(workload::FormatKey(i, 16), &value).ok());
  }

  std::string latency;
  ASSERT_TRUE(db->GetProperty("talus.latency", &latency));
  EXPECT_NE(latency.find("op=put count=500"), std::string::npos) << latency;
  EXPECT_NE(latency.find("op=get count=100"), std::string::npos) << latency;

  const std::vector<Histogram> hists = db->GetLatencyHistograms();
  ASSERT_EQ(hists.size(), static_cast<size_t>(obs::kNumOpTypes));
  const Histogram& put = hists[static_cast<size_t>(obs::OpType::kPut)];
  EXPECT_EQ(put.Count(), 500u);
  EXPECT_GE(put.Percentile(99), put.Median());
  EXPECT_GE(put.Percentile(99.9), put.Percentile(99));
}

TEST(ObsProperty, DisabledStatsMeansNoRecorderAndEmptyProperty) {
  auto env = NewMemEnv();
  DbOptions opts = SmallDbOptions(env.get());
  opts.enable_latency_stats = false;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  ASSERT_TRUE(db->Put("k", "v").ok());

  EXPECT_EQ(db->latency_recorder(), nullptr);
  std::string latency = "sentinel";
  ASSERT_TRUE(db->GetProperty("talus.latency", &latency));
  EXPECT_TRUE(latency.empty());
  // The histogram surface stays shaped (indexed by OpType) but empty.
  const std::vector<Histogram> hists = db->GetLatencyHistograms();
  ASSERT_EQ(hists.size(), static_cast<size_t>(obs::kNumOpTypes));
  for (const Histogram& h : hists) EXPECT_EQ(h.Count(), 0u);
}

TEST(ObsProperty, TalusEventsAndPrometheusExposition) {
  auto env = NewMemEnv();
  DbOptions opts = SmallDbOptions(env.get());
  // Background mode: memtable_switch events come from the active→immutable
  // handoff, which the inline flush path doesn't take.
  opts.execution_mode = ExecutionMode::kBackground;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(
        db->Put(workload::FormatKey(i, 16), std::string(64, 'v')).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());

  std::string events;
  ASSERT_TRUE(db->GetProperty("talus.events", &events));
  EXPECT_NE(events.find("event=memtable_switch"), std::string::npos)
      << events;
  EXPECT_NE(events.find("event=flush_begin"), std::string::npos) << events;
  EXPECT_NE(events.find("event=flush_end"), std::string::npos) << events;
  EXPECT_GT(db->event_ring()->TotalEmitted(), 0u);

  const std::string prom = db->DumpPrometheus();
  EXPECT_NE(prom.find("# TYPE talus_puts_total counter"), std::string::npos);
  EXPECT_NE(prom.find("talus_puts_total 2000"), std::string::npos) << prom;
  EXPECT_NE(prom.find("talus_flushes_total"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE talus_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("talus_latency_us_bucket{op=\"put\",le="),
            std::string::npos);
  EXPECT_NE(prom.find("talus_latency_us_count{op=\"put\"} 2000"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
}

// ----------------------------------------- End-to-end stall reconstruction

// The tentpole promise: when writes stall, the JSONL trace alone explains
// why — stall_enter names the cause, the flush that retired the debt sits
// between enter and exit, and stall_exit reports the stalled time.
TEST(ObsEndToEnd, WriteStallReconstructibleFromTrace) {
  const std::string trace_path = "/tmp/talus_obs_trace_e2e_" +
                                 std::to_string(::getpid()) + ".jsonl";
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/db";
  // Tiny buffer + a single allowed immutable memtable: back-to-back fills
  // outrun the one background thread and hit the stop regime quickly.
  opts.write_buffer_size = 4 << 10;
  opts.target_file_size = 16 << 10;
  opts.block_size = 1024;
  opts.policy = GrowthPolicyConfig::VTLevelFull(3);
  opts.execution_mode = ExecutionMode::kBackground;
  opts.num_background_threads = 1;
  opts.max_immutable_memtables = 1;
  opts.trace_file_path = trace_path;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());

  const std::string value(512, 's');
  bool stalled = false;
  for (int i = 0; i < 50000 && !stalled; i++) {
    ASSERT_TRUE(db->Put(workload::FormatKey(i % 4000, 16), value).ok());
    if (i % 64 == 0) stalled = db->stats().stall_stops > 0;
  }
  ASSERT_TRUE(stalled) << "no write stall after 50000 puts";
  const EngineStats stats = db->stats();
  // The regime/cause split accounts for every stop we hit.
  EXPECT_EQ(stats.stall_stops_memtable + stats.stall_stops_l0,
            stats.stall_stops);
  EXPECT_GT(stats.stall_stop_micros, 0u);
  db.reset();  // Quiesce and flush the trace.

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  size_t enter_line = std::string::npos, exit_line = std::string::npos;
  size_t flush_between = 0;
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  for (size_t i = 0; i < lines.size(); i++) {
    if (enter_line == std::string::npos &&
        lines[i].find("\"event\": \"stall_enter\"") != std::string::npos) {
      // A stop for memtable debt, named as such.
      if (lines[i].find("\"cause\": \"memtable\"") != std::string::npos &&
          lines[i].find("\"b\": 1") != std::string::npos) {
        enter_line = i;
      }
    } else if (enter_line != std::string::npos &&
               exit_line == std::string::npos) {
      if (lines[i].find("\"event\": \"flush_") != std::string::npos) {
        flush_between++;
      }
      if (lines[i].find("\"event\": \"stall_exit\"") != std::string::npos) {
        exit_line = i;
      }
    }
  }
  ASSERT_NE(enter_line, std::string::npos)
      << "no memtable stop in the trace";
  ASSERT_NE(exit_line, std::string::npos) << "stall never exited";
  // The flush that retired the memtable debt shows up inside the stall
  // window (begin or end, depending on where the flush was when we
  // entered), so the trace explains the stall end to end.
  EXPECT_GT(flush_between, 0u);
  std::remove(trace_path.c_str());
}

// --------------------------------------------------------- Sharded frontend

TEST(ObsSharded, SharedRingAndMergedLatency) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/db";
  opts.write_buffer_size = 16 << 10;
  opts.target_file_size = 16 << 10;
  opts.block_size = 1024;
  opts.policy = GrowthPolicyConfig::VTLevelFull(3);
  opts.execution_mode = ExecutionMode::kBackground;
  opts.shard_count = 2;
  opts.shard_split_points = {workload::FormatKey(500, 16)};
  std::unique_ptr<shard::ShardedDB> db;
  ASSERT_TRUE(shard::ShardedDB::Open(opts, &db).ok());

  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(
        db->Put(workload::FormatKey(i, 16), std::string(64, 'v')).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());

  // Both shards emit into ONE ring (cross-shard causality in one stream):
  // the shard field distinguishes them, and the shards' own rings are the
  // shared one.
  ASSERT_EQ(db->shard(0)->event_ring(), db->event_ring());
  ASSERT_EQ(db->shard(1)->event_ring(), db->event_ring());
  std::string events;
  ASSERT_TRUE(db->GetProperty("talus.events", &events));
  EXPECT_NE(events.find("shard=0"), std::string::npos) << events;
  EXPECT_NE(events.find("shard=1"), std::string::npos) << events;

  // Fleet-wide latency merges the per-shard histograms exactly: the put
  // count equals the total across shards.
  const std::vector<Histogram> merged = db->GetLatencyHistograms();
  ASSERT_EQ(merged.size(), static_cast<size_t>(obs::kNumOpTypes));
  const size_t put_idx = static_cast<size_t>(obs::OpType::kPut);
  uint64_t per_shard_total = 0;
  for (size_t i = 0; i < db->shard_count(); i++) {
    per_shard_total +=
        db->shard(i)->GetLatencyHistograms()[put_idx].Count();
  }
  EXPECT_EQ(merged[put_idx].Count(), per_shard_total);
  EXPECT_EQ(merged[put_idx].Count(), 1000u);

  std::string latency;
  ASSERT_TRUE(db->GetProperty("talus.latency", &latency));
  EXPECT_NE(latency.find("op=put count=1000"), std::string::npos)
      << latency;
  const std::string prom = db->DumpPrometheus();
  EXPECT_NE(prom.find("talus_puts_total 1000"), std::string::npos) << prom;
}

}  // namespace
}  // namespace talus
