// Observability subsystem (src/obs/, DESIGN.md §6): the lock-free latency
// recorder, the event ring + JSONL trace, the amplification tracker and
// cost-model drift monitor, the stats snapshotter, the talus.* property
// surface, and the Prometheus exposition — including the end-to-end
// promises that a write stall is reconstructible from the trace alone and
// that per-level write-amp accounting matches the engine's byte counters
// exactly.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "env/env.h"
#include "lsm/db.h"
#include "obs/amp_tracker.h"
#include "obs/event_ring.h"
#include "obs/latency_recorder.h"
#include "obs/model_drift.h"
#include "obs/prometheus.h"
#include "obs/stats_snapshotter.h"
#include "shard/sharded_db.h"
#include "tuning/vertical_cost_model.h"
#include "util/histogram.h"
#include "workload/generator.h"

namespace talus {
namespace {

// ------------------------------------------------------------ LatencyRecorder

TEST(LatencyRecorder, RecordsAcrossThreadsAndMergesStripes) {
  obs::LatencyRecorder recorder;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; i++) {
        // Spread across decades so the exponential buckets all see traffic.
        recorder.Record(obs::OpType::kPut, 1 + (i % 1000));
        if (t == 0 && i == 0) recorder.Record(obs::OpType::kGet, 7);
      }
    });
  }
  for (auto& t : threads) t.join();

  const Histogram put = recorder.SnapshotOp(obs::OpType::kPut);
  EXPECT_EQ(put.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(put.Min(), 1.0);
  EXPECT_DOUBLE_EQ(put.Max(), 1000.0);
  EXPECT_GT(put.Percentile(99), put.Median());
  // Exact sum survives the striped counters: 4 * sum(1..1000) * 10.
  EXPECT_NEAR(put.Sum(),
              static_cast<double>(kThreads) * kPerThread * 500.5, 1e-6);

  // Ops never recorded stay empty; the one-shot Get landed exactly once.
  EXPECT_EQ(recorder.SnapshotOp(obs::OpType::kScan).Count(), 0u);
  EXPECT_EQ(recorder.SnapshotOp(obs::OpType::kGet).Count(), 1u);

  const std::vector<Histogram> all = recorder.SnapshotAll();
  ASSERT_EQ(all.size(), static_cast<size_t>(obs::kNumOpTypes));
  EXPECT_EQ(all[static_cast<size_t>(obs::OpType::kPut)].Count(),
            put.Count());
}

TEST(LatencyRecorder, FormatEmitsOneLinePerOp) {
  obs::LatencyRecorder recorder;
  recorder.Record(obs::OpType::kGet, 42);
  const std::string text = recorder.ToString();
  // Every op type appears, count parses, and the op with traffic shows it.
  for (int op = 0; op < obs::kNumOpTypes; op++) {
    const std::string needle =
        std::string("op=") + obs::OpTypeName(static_cast<obs::OpType>(op));
    EXPECT_NE(text.find(needle), std::string::npos) << text;
  }
  EXPECT_NE(text.find("op=get count=1"), std::string::npos) << text;
  EXPECT_NE(text.find("p99_us="), std::string::npos) << text;
  EXPECT_NE(text.find("p999_us="), std::string::npos) << text;
}

// ----------------------------------------------------------------- EventRing

TEST(EventRing, OrderedSnapshotAndWraparound) {
  obs::EventRing ring(4);
  for (uint64_t i = 0; i < 10; i++) {
    ring.Emit(obs::EventType::kGcDelete, /*shard=*/0, /*a=*/i, /*b=*/0);
  }
  EXPECT_EQ(ring.TotalEmitted(), 10u);
  const std::vector<obs::Event> events = ring.Snapshot();
  // Only the newest `capacity` events survive, oldest first, seq monotonic.
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); i++) {
    EXPECT_EQ(events[i].seq, 6 + i);
    EXPECT_EQ(events[i].a, 6 + i);
  }
  const std::string text = ring.ToString();
  EXPECT_NE(text.find("event=gc_delete"), std::string::npos);
  EXPECT_EQ(text.find("seq=5"), std::string::npos);  // Overwritten.
}

TEST(EventRing, JsonCarriesStallCauseByName) {
  obs::Event e{};
  e.micros = 12;
  e.seq = 3;
  e.type = obs::EventType::kStallEnter;
  e.shard = 1;
  e.a = obs::kCauseMemtable;
  e.b = 1;
  const std::string stall = obs::EventRing::ToJson(e);
  EXPECT_NE(stall.find("\"event\": \"stall_enter\""), std::string::npos);
  EXPECT_NE(stall.find("\"cause\": \"memtable\""), std::string::npos);

  e.type = obs::EventType::kFlushEnd;
  e.a = 4096;
  const std::string flush = obs::EventRing::ToJson(e);
  EXPECT_NE(flush.find("\"event\": \"flush_end\""), std::string::npos);
  EXPECT_NE(flush.find("\"a\": 4096"), std::string::npos);
}

TEST(EventRing, TraceFileRoundTrip) {
  const std::string path = "/tmp/talus_obs_trace_unit_" +
                           std::to_string(::getpid()) + ".jsonl";
  {
    obs::EventRing ring(8);
    ASSERT_TRUE(ring.OpenTraceFile(path));
    ring.Emit(obs::EventType::kFlushBegin, 0, 100, 0);
    ring.Emit(obs::EventType::kFlushEnd, 0, 200, 1234);
    ring.CloseTraceFile();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"event\": \"flush_begin\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"event\": \"flush_end\""), std::string::npos);
  // Each line is one self-contained JSON object.
  for (const std::string& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
  }
  std::remove(path.c_str());
}

// ------------------------------------------------------- DB property surface

DbOptions SmallDbOptions(Env* env) {
  DbOptions opts;
  opts.env = env;
  opts.path = "/db";
  opts.write_buffer_size = 16 << 10;
  opts.target_file_size = 16 << 10;
  opts.block_size = 1024;
  opts.policy = GrowthPolicyConfig::VTLevelFull(3);
  return opts;
}

TEST(ObsProperty, TalusLatencyReportsPerOpPercentiles) {
  auto env = NewMemEnv();
  DbOptions opts = SmallDbOptions(env.get());
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(
        db->Put(workload::FormatKey(i, 16), std::string(64, 'v')).ok());
  }
  std::string value;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db->Get(workload::FormatKey(i, 16), &value).ok());
  }

  std::string latency;
  ASSERT_TRUE(db->GetProperty("talus.latency", &latency));
  EXPECT_NE(latency.find("op=put count=500"), std::string::npos) << latency;
  EXPECT_NE(latency.find("op=get count=100"), std::string::npos) << latency;

  const std::vector<Histogram> hists = db->GetLatencyHistograms();
  ASSERT_EQ(hists.size(), static_cast<size_t>(obs::kNumOpTypes));
  const Histogram& put = hists[static_cast<size_t>(obs::OpType::kPut)];
  EXPECT_EQ(put.Count(), 500u);
  EXPECT_GE(put.Percentile(99), put.Median());
  EXPECT_GE(put.Percentile(99.9), put.Percentile(99));
}

TEST(ObsProperty, DisabledStatsMeansNoRecorderAndEmptyProperty) {
  auto env = NewMemEnv();
  DbOptions opts = SmallDbOptions(env.get());
  opts.enable_latency_stats = false;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  ASSERT_TRUE(db->Put("k", "v").ok());

  EXPECT_EQ(db->latency_recorder(), nullptr);
  std::string latency = "sentinel";
  ASSERT_TRUE(db->GetProperty("talus.latency", &latency));
  EXPECT_TRUE(latency.empty());
  // The histogram surface stays shaped (indexed by OpType) but empty.
  const std::vector<Histogram> hists = db->GetLatencyHistograms();
  ASSERT_EQ(hists.size(), static_cast<size_t>(obs::kNumOpTypes));
  for (const Histogram& h : hists) EXPECT_EQ(h.Count(), 0u);
}

TEST(ObsProperty, TalusEventsAndPrometheusExposition) {
  auto env = NewMemEnv();
  DbOptions opts = SmallDbOptions(env.get());
  // Background mode: memtable_switch events come from the active→immutable
  // handoff, which the inline flush path doesn't take.
  opts.execution_mode = ExecutionMode::kBackground;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(
        db->Put(workload::FormatKey(i, 16), std::string(64, 'v')).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());

  std::string events;
  ASSERT_TRUE(db->GetProperty("talus.events", &events));
  EXPECT_NE(events.find("event=memtable_switch"), std::string::npos)
      << events;
  EXPECT_NE(events.find("event=flush_begin"), std::string::npos) << events;
  EXPECT_NE(events.find("event=flush_end"), std::string::npos) << events;
  EXPECT_GT(db->event_ring()->TotalEmitted(), 0u);

  const std::string prom = db->DumpPrometheus();
  EXPECT_NE(prom.find("# TYPE talus_puts_total counter"), std::string::npos);
  EXPECT_NE(prom.find("talus_puts_total 2000"), std::string::npos) << prom;
  EXPECT_NE(prom.find("talus_flushes_total"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE talus_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("talus_latency_us_bucket{op=\"put\",le="),
            std::string::npos);
  EXPECT_NE(prom.find("talus_latency_us_count{op=\"put\"} 2000"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
}

// ----------------------------------------- End-to-end stall reconstruction

// The tentpole promise: when writes stall, the JSONL trace alone explains
// why — stall_enter names the cause, the flush that retired the debt sits
// between enter and exit, and stall_exit reports the stalled time.
TEST(ObsEndToEnd, WriteStallReconstructibleFromTrace) {
  const std::string trace_path = "/tmp/talus_obs_trace_e2e_" +
                                 std::to_string(::getpid()) + ".jsonl";
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/db";
  // Tiny buffer + a single allowed immutable memtable: back-to-back fills
  // outrun the one background thread and hit the stop regime quickly.
  opts.write_buffer_size = 4 << 10;
  opts.target_file_size = 16 << 10;
  opts.block_size = 1024;
  opts.policy = GrowthPolicyConfig::VTLevelFull(3);
  opts.execution_mode = ExecutionMode::kBackground;
  opts.num_background_threads = 1;
  opts.max_immutable_memtables = 1;
  opts.trace_file_path = trace_path;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());

  const std::string value(512, 's');
  bool stalled = false;
  for (int i = 0; i < 50000 && !stalled; i++) {
    ASSERT_TRUE(db->Put(workload::FormatKey(i % 4000, 16), value).ok());
    if (i % 64 == 0) stalled = db->stats().stall_stops > 0;
  }
  ASSERT_TRUE(stalled) << "no write stall after 50000 puts";
  const EngineStats stats = db->stats();
  // The regime/cause split accounts for every stop we hit.
  EXPECT_EQ(stats.stall_stops_memtable + stats.stall_stops_l0,
            stats.stall_stops);
  EXPECT_GT(stats.stall_stop_micros, 0u);
  db.reset();  // Quiesce and flush the trace.

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  size_t enter_line = std::string::npos, exit_line = std::string::npos;
  size_t flush_between = 0;
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  for (size_t i = 0; i < lines.size(); i++) {
    if (enter_line == std::string::npos &&
        lines[i].find("\"event\": \"stall_enter\"") != std::string::npos) {
      // A stop for memtable debt, named as such.
      if (lines[i].find("\"cause\": \"memtable\"") != std::string::npos &&
          lines[i].find("\"b\": 1") != std::string::npos) {
        enter_line = i;
      }
    } else if (enter_line != std::string::npos &&
               exit_line == std::string::npos) {
      if (lines[i].find("\"event\": \"flush_") != std::string::npos) {
        flush_between++;
      }
      if (lines[i].find("\"event\": \"stall_exit\"") != std::string::npos) {
        exit_line = i;
      }
    }
  }
  ASSERT_NE(enter_line, std::string::npos)
      << "no memtable stop in the trace";
  ASSERT_NE(exit_line, std::string::npos) << "stall never exited";
  // The flush that retired the memtable debt shows up inside the stall
  // window (begin or end, depending on where the flush was when we
  // entered), so the trace explains the stall end to end.
  EXPECT_GT(flush_between, 0u);
  std::remove(trace_path.c_str());
}

// --------------------------------------------------------- Sharded frontend

TEST(ObsSharded, SharedRingAndMergedLatency) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/db";
  opts.write_buffer_size = 16 << 10;
  opts.target_file_size = 16 << 10;
  opts.block_size = 1024;
  opts.policy = GrowthPolicyConfig::VTLevelFull(3);
  opts.execution_mode = ExecutionMode::kBackground;
  opts.shard_count = 2;
  opts.shard_split_points = {workload::FormatKey(500, 16)};
  std::unique_ptr<shard::ShardedDB> db;
  ASSERT_TRUE(shard::ShardedDB::Open(opts, &db).ok());

  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(
        db->Put(workload::FormatKey(i, 16), std::string(64, 'v')).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());

  // Both shards emit into ONE ring (cross-shard causality in one stream):
  // the shard field distinguishes them, and the shards' own rings are the
  // shared one.
  ASSERT_EQ(db->shard(0)->event_ring(), db->event_ring());
  ASSERT_EQ(db->shard(1)->event_ring(), db->event_ring());
  std::string events;
  ASSERT_TRUE(db->GetProperty("talus.events", &events));
  EXPECT_NE(events.find("shard=0"), std::string::npos) << events;
  EXPECT_NE(events.find("shard=1"), std::string::npos) << events;

  // Fleet-wide latency merges the per-shard histograms exactly: the put
  // count equals the total across shards.
  const std::vector<Histogram> merged = db->GetLatencyHistograms();
  ASSERT_EQ(merged.size(), static_cast<size_t>(obs::kNumOpTypes));
  const size_t put_idx = static_cast<size_t>(obs::OpType::kPut);
  uint64_t per_shard_total = 0;
  for (size_t i = 0; i < db->shard_count(); i++) {
    per_shard_total +=
        db->shard(i)->GetLatencyHistograms()[put_idx].Count();
  }
  EXPECT_EQ(merged[put_idx].Count(), per_shard_total);
  EXPECT_EQ(merged[put_idx].Count(), 1000u);

  std::string latency;
  ASSERT_TRUE(db->GetProperty("talus.latency", &latency));
  EXPECT_NE(latency.find("op=put count=1000"), std::string::npos)
      << latency;
  const std::string prom = db->DumpPrometheus();
  EXPECT_NE(prom.find("talus_puts_total 1000"), std::string::npos) << prom;
}

// ---------------------------------------------------------------- AmpTracker

TEST(AmpTracker, StripedLookupFoldAcrossThreads) {
  obs::AmpTracker tracker;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&tracker] {
      for (int i = 0; i < kPerThread; i++) {
        obs::LookupProbe p;
        p.files_probed[0] = 1;
        p.filter_negatives[0] = 1;
        p.files_probed[1] = 1;
        p.block_reads[1] = 1;
        p.deepest_slot = 1;
        p.hit_level = (i % 3 == 0) ? 1
                      : (i % 3 == 1) ? obs::LookupProbe::kHitMemtable
                                     : obs::LookupProbe::kMiss;
        tracker.RecordLookup(p);
      }
    });
  }
  for (auto& t : threads) t.join();
  tracker.RecordFlushWrite(0, 100);
  tracker.RecordFlushWrite(0, 200);
  tracker.RecordCompactionWrite(1, 50, 300);
  tracker.RecordUserPayload(1000);

  const obs::AmpSnapshot snap = tracker.Snapshot();
  const uint64_t total = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(snap.num_levels, 2);
  EXPECT_EQ(snap.lookups, total);
  // Per-level probe attribution survives the stripes exactly.
  EXPECT_EQ(snap.levels[0].files_probed, total);
  EXPECT_EQ(snap.levels[0].filter_negatives, total);
  EXPECT_EQ(snap.levels[1].files_probed, total);
  EXPECT_EQ(snap.levels[1].block_reads, total);
  // i%3 splits 5000 as 1667/1667/1666 per thread.
  EXPECT_EQ(snap.levels[1].hits, uint64_t{kThreads} * 1667);
  EXPECT_EQ(snap.memtable_hits, uint64_t{kThreads} * 1667);
  EXPECT_EQ(snap.misses, uint64_t{kThreads} * 1666);
  EXPECT_EQ(snap.levels[0].flush_bytes_written, 300u);
  EXPECT_EQ(snap.levels[1].compaction_bytes_written, 300u);
  EXPECT_EQ(snap.levels[1].compaction_bytes_read, 50u);
  EXPECT_EQ(snap.user_payload_bytes, 1000u);
  // (300 flush + 300 compaction) / 1000 payload.
  EXPECT_DOUBLE_EQ(snap.WriteAmp(), 0.6);
  EXPECT_DOUBLE_EQ(snap.ReadAmp(), 2.0);  // Two files probed per lookup.
  EXPECT_DOUBLE_EQ(snap.BlocksPerLookup(), 1.0);

  // Epoch-swap windowing: after AdvanceWindow the window is empty, one
  // more lookup shows up only there as a delta while cumulative keeps all.
  tracker.AdvanceWindow();
  EXPECT_EQ(tracker.WindowSnapshot().lookups, 0u);
  obs::LookupProbe p;
  p.files_probed[0] = 1;
  p.deepest_slot = 0;
  p.hit_level = 0;
  tracker.RecordLookup(p);
  EXPECT_EQ(tracker.WindowSnapshot().lookups, 1u);
  EXPECT_EQ(tracker.WindowSnapshot().levels[0].files_probed, 1u);
  EXPECT_EQ(tracker.Snapshot().lookups, total + 1);

  // Fleet aggregation is element-wise addition.
  obs::AmpSnapshot sum = tracker.Snapshot();
  sum.Add(tracker.Snapshot());
  EXPECT_EQ(sum.lookups, 2 * (total + 1));
  EXPECT_EQ(sum.user_payload_bytes, 2000u);
}

// --------------------------------------------- Amp ground truth (whole DB)

// The acceptance bar: per-level write-amp accounting matches the engine's
// own byte counters exactly — flush bytes land on the flush side of level
// 0, per-level compaction bytes equal the per-output-level EngineStats,
// and live space equals the live Version.
TEST(AmpGroundTruth, PerLevelWriteBytesMatchEngineCountersExactly) {
  auto env = NewMemEnv();
  DbOptions opts = SmallDbOptions(env.get());
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(
        db->Put(workload::FormatKey(i, 16), std::string(100, 'v')).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());

  const EngineStats& st = db->stats();
  const obs::AmpSnapshot amp = db->GetAmpSnapshot();
  ASSERT_GT(amp.num_levels, 0);
  ASSERT_GT(st.flush_bytes_written, 0u);
  ASSERT_GT(st.compaction_bytes_written, 0u);

  // Flush bytes are attributed to level 0 (the flush target), nothing else.
  EXPECT_EQ(amp.levels[0].flush_bytes_written, st.flush_bytes_written);
  EXPECT_EQ(amp.TotalBytesFlushed(), st.flush_bytes_written);

  // Compaction bytes match the per-output-level engine accounting exactly.
  uint64_t comp_written = 0;
  uint64_t comp_read = 0;
  for (int i = 0; i < amp.num_levels; i++) {
    const uint64_t engine_level_bytes =
        static_cast<size_t>(i) < st.level_stats.size()
            ? st.level_stats[i].bytes_written
            : 0;
    EXPECT_EQ(amp.levels[i].compaction_bytes_written, engine_level_bytes)
        << "level " << i;
    comp_written += amp.levels[i].compaction_bytes_written;
    comp_read += amp.levels[i].compaction_bytes_read;
  }
  EXPECT_EQ(comp_written, st.compaction_bytes_written);
  EXPECT_EQ(comp_read, st.compaction_bytes_read);
  EXPECT_EQ(amp.user_payload_bytes, st.user_payload_written);
  EXPECT_DOUBLE_EQ(amp.WriteAmp(), st.WriteAmplification());

  // Live space mirrors the current Version: after the flush quiesced, the
  // summed per-level live payload is the tree's approximate data bytes
  // (memtables are empty) and physical SST bytes exceed it (block/filter
  // overhead), so space amp >= 1.
  uint64_t live_payload = 0;
  uint64_t live_sst = 0;
  for (int i = 0; i < amp.num_levels; i++) {
    live_payload += amp.levels[i].live_payload_bytes;
    live_sst += amp.levels[i].live_sst_bytes;
  }
  EXPECT_EQ(live_payload, db->ApproximateDataBytes());
  EXPECT_GT(live_sst, live_payload);
  EXPECT_GE(amp.SpaceAmp(), 1.0);

  // The talus.amp property carries both cumulative and windowed sections.
  std::string text;
  ASSERT_TRUE(db->GetProperty("talus.amp", &text));
  EXPECT_NE(text.find("cumulative:\n"), std::string::npos) << text;
  EXPECT_NE(text.find("window:\n"), std::string::npos) << text;
  EXPECT_NE(text.find("write_amp="), std::string::npos) << text;
  EXPECT_NE(text.find("L0 "), std::string::npos) << text;
}

TEST(AmpGroundTruth, ProbeAccountingMatchesReadPathCounters) {
  auto env = NewMemEnv();
  DbOptions opts = SmallDbOptions(env.get());
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(
        db->Put(workload::FormatKey(i, 16), std::string(64, 'v')).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());

  // Delta-based cross-check: compactions also read data blocks, so compare
  // the Get phase's increments, not absolute counters.
  const obs::AmpSnapshot before = db->GetAmpSnapshot();
  const uint64_t runs_before = db->stats().runs_probed.load();
  const uint64_t fneg_before = db->stats().filter_negatives.load();
  const uint64_t blocks_before = db->stats().data_block_reads.load();

  std::string value;
  for (int i = 0; i < 500; i++) {  // Found: every key exists on disk.
    ASSERT_TRUE(db->Get(workload::FormatKey(i * 3 % 2000, 16), &value).ok());
  }
  for (int i = 0; i < 300; i++) {  // Missing: far outside the key space.
    ASSERT_TRUE(
        db->Get(workload::FormatKey(1000000 + i, 16), &value).IsNotFound());
  }

  obs::AmpSnapshot delta = db->GetAmpSnapshot();
  delta.Subtract(before);
  EXPECT_EQ(delta.lookups, 800u);
  EXPECT_EQ(delta.misses, 300u);
  uint64_t files_probed = 0;
  uint64_t filter_negatives = 0;
  uint64_t block_reads = 0;
  uint64_t hits = 0;
  for (int i = 0; i < delta.num_levels; i++) {
    files_probed += delta.levels[i].files_probed;
    filter_negatives += delta.levels[i].filter_negatives;
    block_reads += delta.levels[i].block_reads;
    hits += delta.levels[i].hits;
  }
  // The memtable is empty after the flush: every found Get hit a level.
  EXPECT_EQ(hits + delta.memtable_hits, 500u);
  EXPECT_EQ(delta.memtable_hits, 0u);
  // Per-level attribution sums to the engine's flat read-path counters.
  EXPECT_EQ(files_probed, db->stats().runs_probed.load() - runs_before);
  EXPECT_EQ(filter_negatives,
            db->stats().filter_negatives.load() - fneg_before);
  EXPECT_EQ(block_reads, db->stats().data_block_reads.load() - blocks_before);

  // A key still in the memtable is attributed there, not to a level.
  ASSERT_TRUE(db->Put("memkey", "memval").ok());
  ASSERT_TRUE(db->Get("memkey", &value).ok());
  obs::AmpSnapshot after = db->GetAmpSnapshot();
  after.Subtract(before);
  EXPECT_EQ(after.memtable_hits, 1u);
}

TEST(ObsProperty, DisabledAmpMeansNoTrackerAndEmptyProperties) {
  auto env = NewMemEnv();
  DbOptions opts = SmallDbOptions(env.get());
  opts.enable_amp_stats = false;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  ASSERT_TRUE(db->Put("k", "v").ok());
  std::string value;
  ASSERT_TRUE(db->Get("k", &value).ok());

  EXPECT_EQ(db->amp_tracker(), nullptr);
  EXPECT_EQ(db->GetAmpSnapshot().lookups, 0u);
  std::string amp = "sentinel";
  ASSERT_TRUE(db->GetProperty("talus.amp", &amp));
  EXPECT_TRUE(amp.empty());
  std::string model = "sentinel";
  ASSERT_TRUE(db->GetProperty("talus.model", &model));
  EXPECT_TRUE(model.empty());
  EXPECT_EQ(db->EvaluateModelDrift().window_lookups, 0u);
  const std::string prom = db->DumpPrometheus();
  EXPECT_EQ(prom.find("talus_amp_bytes_written_total"), std::string::npos);
}

// ----------------------------------------------------------- Model drift

obs::ModelDriftMonitor::Measured MatchedMeasured() {
  // A measurement that agrees with the model exactly: feed the model's own
  // predictions back as "measured".
  tuning::VerticalCostModel model;
  model.size_ratio = 6.0;
  model.bloom_fpr = 0.1;
  model.page_entries = 8.0;
  model.data_buffers = 64;

  obs::ModelDriftMonitor::Measured m;
  m.mix.updates = 0.5;
  m.mix.point_lookups = 0.5;
  m.mix.range_lookups = 0;
  m.window_lookups = 1000;
  m.window_updates = 1000;
  m.found_fraction = 0.5;
  m.page_entries = 8.0;
  m.data_buffers = 64;
  m.blocks_per_lookup =
      0.5 + model.PointLookupCost(tuning::HorizontalMerge::kLeveling);
  m.write_amp =
      model.UpdateCost(tuning::HorizontalMerge::kLeveling) * 8.0;
  return m;
}

obs::ModelDriftMonitor::Params LevelingParams() {
  obs::ModelDriftMonitor::Params params;
  params.merge = tuning::HorizontalMerge::kLeveling;
  params.size_ratio = 6.0;
  params.bloom_fpr = 0.1;
  return params;
}

TEST(ModelDrift, MatchedMeasurementIsNotDrifted) {
  obs::ModelDriftMonitor monitor(LevelingParams());
  const obs::ModelDriftMonitor::Measured m = MatchedMeasured();
  const obs::DriftSample first = monitor.Evaluate(m);
  // Predictions echo the model the measurement was built from.
  EXPECT_NEAR(first.point_ratio, 1.0, 1e-9);
  EXPECT_NEAR(first.update_ratio, 1.0, 1e-9);
  EXPECT_NEAR(first.drift_score, 1.0, 1e-9);
  EXPECT_EQ(first.mix_shift, 0.0);  // No previous window yet.
  EXPECT_FALSE(first.drifted);
  // A steady workload stays un-drifted across windows.
  const obs::DriftSample second = monitor.Evaluate(m);
  EXPECT_NEAR(second.mix_shift, 0.0, 1e-9);
  EXPECT_FALSE(second.drifted);
  // The property text format carries the full comparison.
  const std::string text = second.ToString();
  EXPECT_NE(text.find("design: merge=leveling T=6.0"), std::string::npos)
      << text;
  EXPECT_NE(text.find("point: predicted="), std::string::npos);
  EXPECT_NE(text.find("drifted=0"), std::string::npos) << text;
}

TEST(ModelDrift, MixFlipTriggersDriftViaMixShift) {
  obs::ModelDriftMonitor monitor(LevelingParams());
  obs::ModelDriftMonitor::Measured m = MatchedMeasured();
  m.mix.updates = 0;
  m.mix.point_lookups = 1.0;
  m.window_updates = 0;
  m.write_amp = 0;  // Read-only window: no update-side sample.
  const obs::DriftSample reads = monitor.Evaluate(m);
  EXPECT_FALSE(reads.drifted);
  EXPECT_EQ(reads.update_ratio, 0.0);  // No updates -> no ratio, no score.

  obs::ModelDriftMonitor::Measured w = MatchedMeasured();
  w.mix.updates = 1.0;
  w.mix.point_lookups = 0;
  w.window_lookups = 0;
  w.blocks_per_lookup = 0;
  const obs::DriftSample writes = monitor.Evaluate(w);
  // (|1-0| + |0-1| + 0) / 2 = 1.0 — a full workload flip.
  EXPECT_NEAR(writes.mix_shift, 1.0, 1e-9);
  EXPECT_TRUE(writes.drifted);
}

TEST(ModelDrift, PredictionErrorTriggersDrift) {
  obs::ModelDriftMonitor monitor(LevelingParams());
  obs::ModelDriftMonitor::Measured m = MatchedMeasured();
  m.blocks_per_lookup *= 10.0;  // Reality 10x worse than the model.
  const obs::DriftSample s = monitor.Evaluate(m);
  EXPECT_NEAR(s.point_ratio, 10.0, 1e-9);
  EXPECT_GE(s.drift_score, 10.0 - 1e-9);
  EXPECT_TRUE(s.drifted);

  // Symmetric: reality 10x *better* than the model is equally drift — the
  // design is mis-provisioned either way.
  obs::ModelDriftMonitor monitor2(LevelingParams());
  obs::ModelDriftMonitor::Measured better = MatchedMeasured();
  better.blocks_per_lookup /= 10.0;
  const obs::DriftSample s2 = monitor2.Evaluate(better);
  EXPECT_NEAR(s2.point_ratio, 0.1, 1e-9);
  EXPECT_GE(s2.drift_score, 10.0 - 1e-6);
  EXPECT_TRUE(s2.drifted);
}

TEST(ModelDrift, IdleWindowKeepsMixBaseline) {
  obs::ModelDriftMonitor monitor(LevelingParams());
  obs::ModelDriftMonitor::Measured m = MatchedMeasured();
  m.mix.updates = 0;
  m.mix.point_lookups = 1.0;
  m.window_updates = 0;
  m.write_amp = 0;
  EXPECT_FALSE(monitor.Evaluate(m).drifted);

  // An idle window (no traffic; the mix estimate decays to its fallback)
  // must not move the baseline...
  obs::ModelDriftMonitor::Measured idle;
  idle.mix.updates = 0.5;
  idle.mix.point_lookups = 0.5;
  idle.window_lookups = 0;
  idle.window_updates = 0;
  idle.blocks_per_lookup = 0;
  idle.write_amp = 0;
  monitor.Evaluate(idle);

  // ...so the next busy window with the same read-only mix is NOT a flip.
  const obs::DriftSample next = monitor.Evaluate(m);
  EXPECT_NEAR(next.mix_shift, 0.0, 1e-9);
  EXPECT_FALSE(next.drifted);
}

// The acceptance-criteria integration test: run a mixed workload, ask
// talus.model for predicted-vs-measured point-lookup cost under leveling,
// and require agreement within the documented factor (4, the default
// drift threshold — DESIGN.md §6.7); then flip the mix write-heavy and
// require a drift event.
TEST(ModelDriftIntegration, MixedWorkloadPredictionWithinFactorAndFlipDrifts) {
  auto env = NewMemEnv();
  DbOptions opts = SmallDbOptions(env.get());
  // A block cache this small (4 blocks) defeats caching, so measured
  // blocks-per-lookup reflects the disk fetches the model prices. With a
  // warm cache measured R would drop toward 0 and the comparison would be
  // about the cache, not the tree shape.
  opts.block_cache_bytes = 4096;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());

  for (int i = 0; i < 4000; i++) {
    ASSERT_TRUE(
        db->Put(workload::FormatKey(i, 16), std::string(64, 'v')).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  // Consume the load window so the read phase below is measured alone.
  db->EvaluateModelDrift();

  // Scattered lookups (stride 3761 keys ≈ 300KB): consecutive Gets never
  // share a data block, so each found key costs its one true block fetch —
  // a strided pattern would let even the 4-block cache absorb most reads.
  std::string value;
  for (int i = 0; i < 2000; i++) {
    const int key = static_cast<int>(uint64_t{2654435761u} * i % 4000);
    ASSERT_TRUE(db->Get(workload::FormatKey(key, 16), &value).ok());
  }
  const obs::DriftSample reads = db->EvaluateModelDrift();
  EXPECT_EQ(reads.window_lookups, 2000u);
  EXPECT_EQ(reads.window_updates, 0u);
  ASSERT_GT(reads.predicted_point, 0.0);
  ASSERT_GT(reads.measured_point, 0.0);
  // Every Get found its key on disk, so measured R is about one true data
  // block plus bloom false positives; predicted is found_fraction + L*f.
  // The documented bound: within a factor of 4 either way.
  EXPECT_GT(reads.point_ratio, 0.25) << reads.ToString();
  EXPECT_LT(reads.point_ratio, 4.0) << reads.ToString();
  EXPECT_LE(reads.drift_score, 4.0) << reads.ToString();

  // Steady read-only traffic: same mix as the previous window, no drift.
  for (int i = 0; i < 1000; i++) {
    const int key = static_cast<int>((uint64_t{48271} * i + 11) % 4000);
    ASSERT_TRUE(db->Get(workload::FormatKey(key, 16), &value).ok());
  }
  const obs::DriftSample steady = db->EvaluateModelDrift();
  EXPECT_NEAR(steady.mix_shift, 0.0, 0.05) << steady.ToString();
  EXPECT_FALSE(steady.drifted) << steady.ToString();

  // Flip write-heavy: the mix moves the full L1/2 distance and the drift
  // event fires.
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(
        db->Put(workload::FormatKey(i, 16), std::string(64, 'w')).ok());
  }
  const obs::DriftSample flipped = db->EvaluateModelDrift();
  EXPECT_GT(flipped.mix_shift, 0.35) << flipped.ToString();
  EXPECT_TRUE(flipped.drifted) << flipped.ToString();

  // Every evaluation emitted an amp_sample; the flip emitted model_drift.
  std::string events;
  ASSERT_TRUE(db->GetProperty("talus.events", &events));
  EXPECT_NE(events.find("event=amp_sample"), std::string::npos) << events;
  EXPECT_NE(events.find("event=model_drift"), std::string::npos) << events;

  // And the property surface renders the same comparison.
  std::string model;
  ASSERT_TRUE(db->GetProperty("talus.model", &model));
  EXPECT_NE(model.find("design: merge=leveling"), std::string::npos)
      << model;
  EXPECT_NE(model.find("point: predicted="), std::string::npos) << model;
}

// ----------------------------------------------------------- Snapshotter

TEST(StatsSnapshotter, RingBoundJsonlAndIdempotentStop) {
  const std::string path = "/tmp/talus_obs_snap_unit_" +
                           std::to_string(::getpid()) + ".jsonl";
  std::atomic<int> next{0};
  obs::StatsSnapshotter::Options sopts;
  sopts.interval_ms = 5;
  sopts.ring_capacity = 4;
  sopts.jsonl_path = path;
  obs::StatsSnapshotter snap(/*pool=*/nullptr, sopts, [&next] {
    return "{\"n\": " + std::to_string(next.fetch_add(1)) + "}";
  });
  snap.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  snap.Stop();
  const uint64_t total = snap.TotalSamples();
  EXPECT_GE(total, 2u);

  // The ring is bounded and oldest-first: consecutive sample numbers
  // ending at the newest.
  const std::vector<std::string> ring = snap.RingContents();
  ASSERT_LE(ring.size(), 4u);
  ASSERT_FALSE(ring.empty());
  for (size_t i = 0; i < ring.size(); i++) {
    const uint64_t expect_n = total - ring.size() + i;
    EXPECT_EQ(ring[i], "{\"n\": " + std::to_string(expect_n) + "}");
  }

  // The JSONL file kept every sample, not just the ring's tail.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  uint64_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    lines++;
  }
  EXPECT_EQ(lines, total);

  // Stop is idempotent: no second closing sample.
  snap.Stop();
  EXPECT_EQ(snap.TotalSamples(), total);
  std::remove(path.c_str());
}

TEST(StatsSnapshotter, ClosingSampleCoversRunsShorterThanInterval) {
  std::atomic<int> calls{0};
  obs::StatsSnapshotter::Options sopts;
  sopts.interval_ms = 60000;  // No timer tick will ever fire in this test.
  obs::StatsSnapshotter snap(/*pool=*/nullptr, sopts, [&calls] {
    calls.fetch_add(1);
    return std::string("{\"closing\": true}");
  });
  snap.Start();
  snap.Stop();
  // The closing sample guarantees a short run still leaves one sample.
  EXPECT_EQ(snap.TotalSamples(), 1u);
  EXPECT_EQ(calls.load(), 1);
  ASSERT_EQ(snap.RingContents().size(), 1u);
  EXPECT_EQ(snap.RingContents()[0], "{\"closing\": true}");
}

TEST(StatsSnapshotter, DbTimeSeriesEndsWithClosingSample) {
  const std::string path = "/tmp/talus_obs_snap_db_" +
                           std::to_string(::getpid()) + ".jsonl";
  auto env = NewMemEnv();
  DbOptions opts = SmallDbOptions(env.get());
  opts.stats_snapshot_interval_ms = 5;
  opts.stats_snapshot_path = path;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  ASSERT_NE(db->stats_snapshotter(), nullptr);

  std::string value;
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(
        db->Put(workload::FormatKey(i, 16), std::string(64, 'v')).ok());
    if (i % 4 == 0) {
      db->Get(workload::FormatKey(i / 2, 16), &value);
    }
  }
  db->stats_snapshotter()->SampleNow();
  std::string snaps;
  ASSERT_TRUE(db->GetProperty("talus.snapshots", &snaps));
  EXPECT_NE(snaps.find("\"t_us\": "), std::string::npos) << snaps;
  EXPECT_NE(snaps.find("\"write_amp\": "), std::string::npos) << snaps;
  EXPECT_NE(snaps.find("\"drift_score\": "), std::string::npos) << snaps;

  db.reset();  // ~DB stops the snapshotter: closing sample, file flushed.

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_GE(lines.size(), 1u);
  for (const std::string& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
    EXPECT_NE(l.find("\"blocks_per_lookup\": "), std::string::npos) << l;
  }
  std::remove(path.c_str());
}

// ------------------------------------------------- Prometheus exposition

TEST(PrometheusWriter, InterleavedFamiliesRegroupUnderSingleHeaders) {
  obs::PrometheusWriter w;
  // Deliberately interleave two counter families and a gauge, the way a
  // per-level emission loop does.
  w.AddCounter("talus_test_a", "level=\"0\"", 1, "Family A help.");
  w.AddCounter("talus_test_b", "", 2);
  w.AddCounter("talus_test_a", "level=\"1\"", 3);
  w.AddGauge("talus_test_g", "", 1.5, "Gauge help.");
  w.AddCounter("talus_test_b", "x=\"y\"", 4);
  const std::string out = w.Output();

  // Exactly one TYPE header per family despite the interleaving.
  auto count = [&out](const std::string& needle) {
    size_t n = 0;
    for (size_t pos = out.find(needle); pos != std::string::npos;
         pos = out.find(needle, pos + 1)) {
      n++;
    }
    return n;
  };
  EXPECT_EQ(count("# TYPE talus_test_a counter"), 1u) << out;
  EXPECT_EQ(count("# TYPE talus_test_b counter"), 1u) << out;
  EXPECT_EQ(count("# TYPE talus_test_g gauge"), 1u) << out;
  EXPECT_EQ(count("# HELP talus_test_a Family A help."), 1u) << out;

  // Families are contiguous, in first-insertion order, samples after their
  // own header: a{0}, a{1} both before TYPE b, both b samples before g.
  const size_t type_a = out.find("# TYPE talus_test_a");
  const size_t a0 = out.find("talus_test_a{level=\"0\"} 1");
  const size_t a1 = out.find("talus_test_a{level=\"1\"} 3");
  const size_t type_b = out.find("# TYPE talus_test_b");
  const size_t b0 = out.find("talus_test_b 2");
  const size_t b1 = out.find("talus_test_b{x=\"y\"} 4");
  const size_t type_g = out.find("# TYPE talus_test_g");
  ASSERT_NE(a0, std::string::npos) << out;
  ASSERT_NE(a1, std::string::npos) << out;
  ASSERT_NE(b1, std::string::npos) << out;
  EXPECT_LT(type_a, a0);
  EXPECT_LT(a0, a1);
  EXPECT_LT(a1, type_b);
  EXPECT_LT(type_b, b0);
  EXPECT_LT(b0, b1);
  EXPECT_LT(b1, type_g);
}

// Scans an exposition dump for format conformance: every family declared
// exactly once, and every sample sits under its own family's TYPE header
// (which is equivalent to families being contiguous).
void CheckPrometheusConformance(const std::string& prom) {
  std::vector<std::string> declared;
  std::string family;
  size_t start = 0;
  int line_no = 0;
  while (start < prom.size()) {
    size_t end = prom.find('\n', start);
    if (end == std::string::npos) end = prom.size();
    const std::string line = prom.substr(start, end - start);
    start = end + 1;
    line_no++;
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      const size_t sp = line.find(' ', 7);
      ASSERT_NE(sp, std::string::npos) << line;
      family = line.substr(7, sp - 7);
      for (const std::string& d : declared) {
        EXPECT_NE(d, family) << "family declared twice: " << family;
      }
      declared.push_back(family);
      continue;
    }
    if (line[0] == '#') continue;  // HELP lines.
    const std::string name = line.substr(0, line.find_first_of("{ "));
    // A sample belongs to the most recent TYPE family: its bare name, or a
    // histogram series suffix of it.
    const bool matches = name == family || name == family + "_bucket" ||
                         name == family + "_sum" ||
                         name == family + "_count";
    EXPECT_TRUE(matches) << "line " << line_no << " sample '" << name
                         << "' not under its family '" << family << "'";
  }
  EXPECT_FALSE(declared.empty());
}

TEST(ObsProperty, PrometheusAmpFamiliesAndConformance) {
  auto env = NewMemEnv();
  DbOptions opts = SmallDbOptions(env.get());
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(
        db->Put(workload::FormatKey(i, 16), std::string(64, 'v')).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  std::string value;
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db->Get(workload::FormatKey(i, 16), &value).ok());
  }

  const std::string prom = db->DumpPrometheus();
  // The amp families exist, carry per-level labels with the flush vs
  // compaction split, and the derived gauges are present with HELP text.
  EXPECT_NE(
      prom.find("# TYPE talus_amp_bytes_written_total counter"),
      std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# HELP talus_amp_bytes_written_total"),
            std::string::npos);
  EXPECT_NE(
      prom.find("talus_amp_bytes_written_total{level=\"0\",source=\"flush\"}"),
      std::string::npos)
      << prom;
  EXPECT_NE(prom.find("source=\"compaction\""), std::string::npos) << prom;
  EXPECT_NE(prom.find("talus_amp_files_probed_total{level="),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE talus_write_amp gauge"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE talus_space_amp gauge"), std::string::npos);
  EXPECT_NE(prom.find("talus_blocks_per_lookup "), std::string::npos);
  EXPECT_NE(prom.find("talus_amp_live_bytes{level=\"0\",kind=\"sst\"}"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("talus_amp_lookups_total 200"), std::string::npos)
      << prom;

  // The whole dump — stats counters, latency histograms, amp families —
  // is format-conformant even though the amp emission loop is level-major.
  CheckPrometheusConformance(prom);
}

// --------------------------------------------- Sharded fleet aggregation

TEST(ObsSharded, FleetAmpModelAndSnapshotSurfaces) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/db";
  opts.write_buffer_size = 16 << 10;
  opts.target_file_size = 16 << 10;
  opts.block_size = 1024;
  opts.policy = GrowthPolicyConfig::VTLevelFull(3);
  opts.execution_mode = ExecutionMode::kBackground;
  opts.shard_count = 2;
  opts.shard_split_points = {workload::FormatKey(500, 16)};
  // A long interval: the test drives sampling explicitly via SampleNow so
  // it never sleeps.
  opts.stats_snapshot_interval_ms = 60000;
  std::unique_ptr<shard::ShardedDB> db;
  ASSERT_TRUE(shard::ShardedDB::Open(opts, &db).ok());

  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(
        db->Put(workload::FormatKey(i, 16), std::string(64, 'v')).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  std::string value;
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db->Get(workload::FormatKey(i * 5 % 1000, 16), &value).ok());
  }

  // One fleet-level snapshotter; the shards run none of their own.
  ASSERT_NE(db->stats_snapshotter(), nullptr);
  EXPECT_EQ(db->shard(0)->stats_snapshotter(), nullptr);
  EXPECT_EQ(db->shard(1)->stats_snapshotter(), nullptr);

  // Fleet aggregation is the exact sum of the per-shard snapshots.
  const obs::AmpSnapshot fleet = db->AggregatedAmpSnapshot();
  obs::AmpSnapshot summed = db->shard(0)->GetAmpSnapshot();
  summed.Add(db->shard(1)->GetAmpSnapshot());
  EXPECT_EQ(fleet.lookups, 200u);
  EXPECT_EQ(fleet.lookups, summed.lookups);
  EXPECT_EQ(fleet.user_payload_bytes, summed.user_payload_bytes);
  EXPECT_EQ(fleet.TotalBytesFlushed(), summed.TotalBytesFlushed());
  // The split point puts traffic on both shards.
  EXPECT_GT(db->shard(0)->GetAmpSnapshot().user_payload_bytes, 0u);
  EXPECT_GT(db->shard(1)->GetAmpSnapshot().user_payload_bytes, 0u);

  std::string amp;
  ASSERT_TRUE(db->GetProperty("talus.amp", &amp));
  EXPECT_NE(amp.find("-- fleet cumulative --"), std::string::npos) << amp;
  EXPECT_NE(amp.find("-- shard 0 --"), std::string::npos) << amp;
  EXPECT_NE(amp.find("-- shard 1 --"), std::string::npos) << amp;

  std::string model;
  ASSERT_TRUE(db->GetProperty("talus.model", &model));
  EXPECT_NE(model.find("-- shard 1 --"), std::string::npos) << model;
  EXPECT_NE(model.find("drifted="), std::string::npos) << model;

  // The fleet sample line aggregates across shards; the property serves
  // the fleet ring.
  db->stats_snapshotter()->SampleNow();
  std::string snaps;
  ASSERT_TRUE(db->GetProperty("talus.snapshots", &snaps));
  EXPECT_NE(snaps.find("\"shards\": 2"), std::string::npos) << snaps;
  EXPECT_NE(snaps.find("\"write_amp\": "), std::string::npos) << snaps;

  const std::string prom = db->DumpPrometheus();
  EXPECT_NE(prom.find("talus_amp_bytes_written_total"), std::string::npos);
  EXPECT_NE(prom.find("talus_write_amp"), std::string::npos);
  CheckPrometheusConformance(prom);
}

}  // namespace
}  // namespace talus
