// Read-path subsystem tests (DESIGN.md §2.7): Version refcounting, the
// sharded TableCache (capacity bound, pinned handles, eviction), ReadView
// acquisition, pinned-iterator snapshot consistency while concurrent
// flushes/compactions install new versions and delete the files the
// iterator reads, and deferred obsolete-file GC.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "env/env.h"
#include "lsm/db.h"
#include "lsm/filename.h"
#include "read/table_cache.h"
#include "table/sst_builder.h"
#include "util/random.h"
#include "workload/generator.h"

namespace talus {
namespace {

// ------------------------------------------------------------- Version refs

TEST(VersionRef, LastUnrefReportsOwnership) {
  Version* v = new Version();
  v->Ref();
  v->Ref();
  EXPECT_EQ(v->RefCount(), 2);
  EXPECT_FALSE(v->Unref());
  EXPECT_TRUE(v->Unref());  // Caller owns destruction now.
  delete v;
}

TEST(VersionRef, CopyStartsUnreferenced) {
  Version a;
  a.Ref();
  Version b(a);
  EXPECT_EQ(b.RefCount(), 0);
  EXPECT_TRUE(a.Unref());
}

// -------------------------------------------------------------- TableCache

class TableCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    ASSERT_TRUE(env_->CreateDirIfMissing("/tc").ok());
  }

  // Builds a one-entry SST named with `number` containing key<number>.
  void BuildFile(uint64_t number) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(SstFileName("/tc", number), &file).ok());
    SstBuilder builder(SstBuilderOptions{}, std::move(file));
    InternalKey ikey("key" + std::to_string(number), 1, kTypeValue);
    builder.Add(ikey.Encode(), "value" + std::to_string(number));
    ASSERT_TRUE(builder.Finish().ok());
  }

  std::unique_ptr<Env> env_;
  LruCache block_cache_{1 << 20};
};

TEST_F(TableCacheTest, HitsMissesAndCapacityEviction) {
  // Capacity 8 across 8 shards = 1 reader per shard; file numbers 0..15 map
  // two files onto every shard, so the second open always evicts the first.
  read::TableCache cache(env_.get(), "/tc", &block_cache_, 8);
  for (uint64_t n = 0; n < 16; n++) BuildFile(n);

  for (uint64_t n = 0; n < 16; n++) {
    ASSERT_NE(cache.GetReader(n), nullptr);
  }
  auto stats = cache.GetStats();
  EXPECT_EQ(stats.misses, 16u);
  EXPECT_EQ(stats.opens, 16u);
  EXPECT_EQ(stats.evictions, 8u);
  EXPECT_EQ(stats.open_readers, 8u);
  EXPECT_EQ(stats.capacity, 8u);

  // 8..15 are resident: all hits. 0..7 were evicted: all misses.
  for (uint64_t n = 8; n < 16; n++) ASSERT_NE(cache.GetReader(n), nullptr);
  stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 8u);
  for (uint64_t n = 0; n < 8; n++) ASSERT_NE(cache.GetReader(n), nullptr);
  stats = cache.GetStats();
  EXPECT_EQ(stats.misses, 24u);
}

TEST_F(TableCacheTest, PinnedHandleSurvivesEviction) {
  read::TableCache cache(env_.get(), "/tc", &block_cache_, 8);
  BuildFile(8);
  std::shared_ptr<SstReader> pinned = cache.GetReader(8);
  ASSERT_NE(pinned, nullptr);
  cache.Evict(8);

  // The cache no longer references the reader, but the pin keeps it usable.
  EXPECT_EQ(cache.GetStats().open_readers, 0u);
  std::string value;
  Status s;
  LookupKey lkey("key8", kMaxSequenceNumber);
  ASSERT_TRUE(pinned->Get(lkey, &value, &s));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(value, "value8");
}

TEST_F(TableCacheTest, OpenFailureReturnsStatus) {
  read::TableCache cache(env_.get(), "/tc", &block_cache_, 8);
  Status s;
  EXPECT_EQ(cache.GetReader(999, &s), nullptr);
  EXPECT_FALSE(s.ok());
}

// --------------------------------------------------------------- Read path

DbOptions SmallDb(Env* env, ExecutionMode mode = ExecutionMode::kInline) {
  DbOptions opts;
  opts.env = env;
  opts.path = "/db";
  opts.write_buffer_size = 4 << 10;
  opts.target_file_size = 4 << 10;
  opts.block_size = 1024;
  opts.block_cache_bytes = 64 << 10;
  opts.policy = GrowthPolicyConfig::VTTierFull(3);
  opts.execution_mode = mode;
  opts.num_background_threads = 2;
  opts.slowdown_delay_micros = 100;
  return opts;
}

size_t CountSstFiles(Env* env, const std::string& path) {
  std::vector<std::string> children;
  EXPECT_TRUE(env->GetChildren(path, &children).ok());
  size_t count = 0;
  for (const auto& name : children) {
    uint64_t number = 0;
    std::string suffix;
    if (ParseFileName(name, &number, &suffix) && suffix == "sst") count++;
  }
  return count;
}

size_t CountVersionFiles(const Version& v) {
  size_t count = 0;
  for (const auto& level : v.levels) {
    for (const auto& run : level.runs) count += run.files.size();
  }
  return count;
}

std::vector<std::pair<std::string, std::string>> Drain(Iterator* iter) {
  std::vector<std::pair<std::string, std::string>> out;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    out.emplace_back(iter->key().ToString(), iter->value().ToString());
  }
  return out;
}

TEST(ReadPath, IteratorPinsExactSnapshotAcrossCompaction) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(SmallDb(env.get()), &db).ok());
  for (int i = 0; i < 400; i++) {
    ASSERT_TRUE(
        db->Put(workload::FormatKey(i, 16), "v1-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());

  // Reference state, then pin an iterator on it.
  std::vector<std::pair<std::string, std::string>> expect;
  ASSERT_TRUE(db->Scan(Slice(""), 1000000, &expect).ok());
  auto iter = db->NewIterator();

  const size_t files_before = CountSstFiles(env.get(), "/db");
  ASSERT_GT(files_before, 0u);

  // Rewrite every key and compact twice: the iterator's input files are
  // replaced and queued for deletion while it is pinned to them.
  ASSERT_TRUE(db->CompactAll().ok());
  for (int i = 0; i < 400; i++) {
    ASSERT_TRUE(
        db->Put(workload::FormatKey(i, 16), "v2-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  ASSERT_TRUE(db->CompactAll().ok());

  // Deferral is observable: more files on disk than the live version names.
  EXPECT_GT(CountSstFiles(env.get(), "/db"),
            CountVersionFiles(db->current_version()));

  // Bit-identical pre-compaction snapshot.
  auto got = Drain(iter.get());
  ASSERT_TRUE(iter->status().ok());
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < expect.size(); i++) {
    EXPECT_EQ(got[i].first, expect[i].first);
    EXPECT_EQ(got[i].second, expect[i].second);
  }

  // Releasing the iterator lets deferred GC delete the pinned files.
  iter.reset();
  EXPECT_EQ(CountSstFiles(env.get(), "/db"),
            CountVersionFiles(db->current_version()));
  EXPECT_GT(db->stats().obsolete_files_deleted, 0u);

  // The latest state is unaffected.
  std::string value;
  ASSERT_TRUE(db->Get(workload::FormatKey(7, 16), &value).ok());
  EXPECT_EQ(value, "v2-7");
}

TEST(ReadPath, IteratorIgnoresWritesAfterCreation) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(SmallDb(env.get()), &db).ok());
  std::map<std::string, std::string> model;
  for (int i = 0; i < 200; i++) {
    std::string key = workload::FormatKey(i, 16);
    ASSERT_TRUE(db->Put(key, "old").ok());
    model[key] = "old";
  }

  auto iter = db->NewIterator();
  // Overwrites, deletes, and brand-new keys after the pin are invisible.
  for (int i = 0; i < 200; i += 2) {
    ASSERT_TRUE(db->Put(workload::FormatKey(i, 16), "new").ok());
  }
  for (int i = 1; i < 200; i += 4) {
    ASSERT_TRUE(db->Delete(workload::FormatKey(i, 16)).ok());
  }
  ASSERT_TRUE(db->Put(workload::FormatKey(1000, 16), "extra").ok());

  auto got = Drain(iter.get());
  ASSERT_EQ(got.size(), model.size());
  auto mit = model.begin();
  for (const auto& [k, v] : got) {
    EXPECT_EQ(k, mit->first);
    EXPECT_EQ(v, mit->second);
    ++mit;
  }
}

TEST(ReadPath, AcquireReadViewPinsSequence) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(SmallDb(env.get()), &db).ok());
  ASSERT_TRUE(db->Put("k", "v1").ok());
  auto view = db->AcquireReadView();
  const SequenceNumber pinned = view->sequence;
  ASSERT_TRUE(db->Put("k", "v2").ok());
  EXPECT_EQ(view->sequence, pinned);
  EXPECT_GE(view->version->RefCount(), 1);
  view.reset();  // Release must not disturb the DB.
  std::string value;
  ASSERT_TRUE(db->Get("k", &value).ok());
  EXPECT_EQ(value, "v2");
}

TEST(ReadPath, ScansAndGetsDuringBackgroundMaintenance) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(SmallDb(env.get(), ExecutionMode::kBackground), &db).ok());

  constexpr int kKeys = 300;
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(db->Put(workload::FormatKey(i, 16), "seed").ok());
  }

  std::atomic<bool> done{false};
  std::thread writer([&] {
    // Heavy overwrite traffic: many flushes and compactions, so versions
    // are installed and files deleted while readers hold pins.
    for (int i = 0; i < 6000; i++) {
      ASSERT_TRUE(
          db->Put(workload::FormatKey(i % kKeys, 16), std::to_string(i))
              .ok());
    }
    done = true;
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; r++) {
    readers.emplace_back([&, r] {
      Random rnd(100 + r);
      while (!done) {
        // Full scans through a pinned iterator: keys must be strictly
        // increasing and exactly the seeded key space (every key was
        // written before the writer started, none is ever deleted).
        auto iter = db->NewIterator();
        std::string prev;
        size_t n = 0;
        for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
          ASSERT_TRUE(prev.empty() || prev < iter->key().ToString());
          prev = iter->key().ToString();
          ASSERT_FALSE(iter->value().empty());
          n++;
        }
        ASSERT_TRUE(iter->status().ok());
        ASSERT_EQ(n, static_cast<size_t>(kKeys));
        std::string value;
        Status s = db->Get(workload::FormatKey(rnd.Uniform(kKeys), 16),
                           &value);
        ASSERT_TRUE(s.ok());
        ASSERT_FALSE(value.empty());
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  ASSERT_TRUE(db->FlushMemTable().ok());

  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(db->Scan(Slice(""), 1000000, &rows).ok());
  EXPECT_EQ(rows.size(), static_cast<size_t>(kKeys));
}

TEST(ReadPath, OrphanedSstsSweptAtOpen) {
  auto env = NewMemEnv();
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(SmallDb(env.get()), &db).ok());
    for (int i = 0; i < 300; i++) {
      ASSERT_TRUE(db->Put(workload::FormatKey(i, 16), "x").ok());
    }
    ASSERT_TRUE(db->FlushMemTable().ok());
  }
  // Simulate a crash that left a deferred-GC file behind.
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(
        env->NewWritableFile(SstFileName("/db", 999999), &file).ok());
    SstBuilder builder(SstBuilderOptions{}, std::move(file));
    InternalKey ikey("zzz", 1, kTypeValue);
    builder.Add(ikey.Encode(), "orphan");
    ASSERT_TRUE(builder.Finish().ok());
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(SmallDb(env.get()), &db).ok());
  EXPECT_EQ(CountSstFiles(env.get(), "/db"),
            CountVersionFiles(db->current_version()));
  std::string value;
  EXPECT_TRUE(db->Get("zzz", &value).IsNotFound());
}

}  // namespace
}  // namespace talus
