#include "env/env.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace talus {
namespace {

class EnvTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      owned_ = NewMemEnv();
      env_ = owned_.get();
      base_ = "/envtest";
    } else {
      env_ = Env::Default();
      base_ = ::testing::TempDir() + "talus_env_test";
    }
    ASSERT_TRUE(env_->CreateDirIfMissing(base_).ok());
  }

  void TearDown() override {
    std::vector<std::string> children;
    if (env_->GetChildren(base_, &children).ok()) {
      for (const auto& c : children) env_->RemoveFile(base_ + "/" + c);
    }
  }

  std::unique_ptr<Env> owned_;
  Env* env_ = nullptr;
  std::string base_;
};

TEST_P(EnvTest, WriteReadRoundTrip) {
  const std::string fname = base_ + "/data";
  std::unique_ptr<WritableFile> wf;
  ASSERT_TRUE(env_->NewWritableFile(fname, &wf).ok());
  ASSERT_TRUE(wf->Append("hello ").ok());
  ASSERT_TRUE(wf->Append("world").ok());
  ASSERT_TRUE(wf->Sync().ok());
  ASSERT_TRUE(wf->Close().ok());

  uint64_t size = 0;
  ASSERT_TRUE(env_->GetFileSize(fname, &size).ok());
  EXPECT_EQ(size, 11u);

  std::unique_ptr<RandomAccessFile> rf;
  ASSERT_TRUE(env_->NewRandomAccessFile(fname, &rf).ok());
  char scratch[32];
  Slice result;
  ASSERT_TRUE(rf->Read(6, 5, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "world");
  ASSERT_TRUE(rf->Read(0, 5, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "hello");
  EXPECT_EQ(rf->Size(), 11u);
}

TEST_P(EnvTest, SequentialReadAndSkip) {
  const std::string fname = base_ + "/seq";
  std::unique_ptr<WritableFile> wf;
  ASSERT_TRUE(env_->NewWritableFile(fname, &wf).ok());
  ASSERT_TRUE(wf->Append("0123456789").ok());
  ASSERT_TRUE(wf->Close().ok());

  std::unique_ptr<SequentialFile> sf;
  ASSERT_TRUE(env_->NewSequentialFile(fname, &sf).ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(sf->Read(3, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "012");
  ASSERT_TRUE(sf->Skip(4).ok());
  ASSERT_TRUE(sf->Read(3, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "789");
  // EOF.
  ASSERT_TRUE(sf->Read(3, &result, scratch).ok());
  EXPECT_TRUE(result.empty());
}

TEST_P(EnvTest, FileLifecycle) {
  const std::string fname = base_ + "/lifecycle";
  EXPECT_FALSE(env_->FileExists(fname));
  std::unique_ptr<WritableFile> wf;
  ASSERT_TRUE(env_->NewWritableFile(fname, &wf).ok());
  wf->Append("x");
  wf->Close();
  EXPECT_TRUE(env_->FileExists(fname));

  const std::string renamed = base_ + "/renamed";
  ASSERT_TRUE(env_->RenameFile(fname, renamed).ok());
  EXPECT_FALSE(env_->FileExists(fname));
  EXPECT_TRUE(env_->FileExists(renamed));

  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(base_, &children).ok());
  bool found = false;
  for (const auto& c : children) {
    if (c == "renamed") found = true;
  }
  EXPECT_TRUE(found);

  ASSERT_TRUE(env_->RemoveFile(renamed).ok());
  EXPECT_FALSE(env_->FileExists(renamed));
  EXPECT_FALSE(env_->RemoveFile(renamed).ok());
}

TEST_P(EnvTest, MissingFileErrors) {
  std::unique_ptr<RandomAccessFile> rf;
  EXPECT_FALSE(env_->NewRandomAccessFile(base_ + "/nope", &rf).ok());
  std::unique_ptr<SequentialFile> sf;
  EXPECT_FALSE(env_->NewSequentialFile(base_ + "/nope", &sf).ok());
  uint64_t size;
  EXPECT_FALSE(env_->GetFileSize(base_ + "/nope", &size).ok());
}

INSTANTIATE_TEST_SUITE_P(MemAndPosix, EnvTest, ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "MemEnv" : "PosixEnv";
                         });

TEST(MemEnvStats, IoAccounting) {
  auto env = NewMemEnv();
  IoStats* io = env->io_stats();
  std::unique_ptr<WritableFile> wf;
  ASSERT_TRUE(env->NewWritableFile("/f", &wf).ok());
  const std::string payload(8192, 'x');
  wf->Append(payload);
  EXPECT_EQ(io->bytes_written(), 8192u);
  EXPECT_EQ(io->storage_bytes(), 8192u);
  EXPECT_EQ(io->peak_storage_bytes(), 8192u);
  const IoCostModel model = io->cost_model();
  // Writes are bandwidth-charged: exactly 2 pages, no request cost.
  EXPECT_DOUBLE_EQ(io->clock(), 2 * model.write_page_cost);

  std::unique_ptr<RandomAccessFile> rf;
  ASSERT_TRUE(env->NewRandomAccessFile("/f", &rf).ok());
  char scratch[4096];
  Slice result;
  rf->Read(0, 4096, &result, scratch);
  EXPECT_EQ(io->bytes_read(), 4096u);
  // Reads pay latency + bandwidth for one page.
  EXPECT_DOUBLE_EQ(io->clock(), 2 * model.write_page_cost +
                                    model.read_request_cost +
                                    model.read_page_cost);

  ASSERT_TRUE(env->RemoveFile("/f").ok());
  EXPECT_EQ(io->storage_bytes(), 0u);
  EXPECT_EQ(io->peak_storage_bytes(), 8192u);  // Peak persists.
}

TEST(MemEnvStats, IsolatedBetweenInstances) {
  auto env1 = NewMemEnv();
  auto env2 = NewMemEnv();
  std::unique_ptr<WritableFile> wf;
  ASSERT_TRUE(env1->NewWritableFile("/f", &wf).ok());
  wf->Append("data");
  EXPECT_FALSE(env2->FileExists("/f"));
  EXPECT_EQ(env2->io_stats()->bytes_written(), 0u);
}

}  // namespace
}  // namespace talus
