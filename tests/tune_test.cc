// Adaptive growth-policy tuning (src/tune/, DESIGN.md §9): the hysteresis
// navigator's anti-flap guarantees, the policy-config codec behind manifest
// re-resolution, the live ApplyPolicyConfig migration path (under
// concurrent writers, with catch-up convergence, across reopen), the
// sense→navigate→act loop's JSONL trace signature
// (kModelDrift → kPolicyChange), and per-shard tuning isolation.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "env/env.h"
#include "lsm/db.h"
#include "policy/policy_config.h"
#include "shard/sharded_db.h"
#include "tune/adaptive_tuner.h"
#include "tuning/vertical_cost_model.h"
#include "workload/generator.h"

namespace talus {
namespace {

DbOptions SmallDbOptions(Env* env) {
  DbOptions opts;
  opts.env = env;
  opts.path = "/db";
  opts.write_buffer_size = 16 << 10;
  opts.target_file_size = 16 << 10;
  opts.block_size = 1024;
  opts.policy = GrowthPolicyConfig::VTLevelFull(4);
  return opts;
}

tune::TunerInputs BaseInputs(double update_frac) {
  tune::TunerInputs in;
  in.mix.updates = update_frac;
  in.mix.point_lookups = 1.0 - update_frac;
  in.mix.range_lookups = 0;
  in.window_ops = 100000;
  in.bloom_fpr = 0.1;
  in.page_entries = 16;
  in.data_buffers = 256;
  in.current_merge = tuning::HorizontalMerge::kLeveling;
  in.current_size_ratio = 6.0;
  return in;
}

// Count the runs in each "L<i>:" section of a Version::DebugString dump.
std::vector<int> RunsPerLevel(const std::string& levels_text) {
  std::vector<int> runs;
  size_t pos = 0;
  while (pos < levels_text.size()) {
    size_t eol = levels_text.find('\n', pos);
    if (eol == std::string::npos) eol = levels_text.size();
    const std::string line = levels_text.substr(pos, eol - pos);
    if (line.rfind("L", 0) == 0) {
      runs.push_back(0);
    } else if (!runs.empty() && line.rfind("  run ", 0) == 0) {
      runs.back()++;
    }
    pos = eol + 1;
  }
  return runs;
}

// ------------------------------------------------------------- Navigator

TEST(TunerNavigator, StationaryMixNeverFlaps) {
  // The core anti-flap promise: against ANY stationary mix the tuner
  // switches at most once — it can move to the winning design, but the
  // hysteresis band must then hold it there (at the indifference boundary
  // the cost ratio is ~1 from either side, under the band from both).
  // Cooldown 0 so flapping would be VISIBLE if the band failed.
  for (int w10 = 0; w10 <= 10; w10++) {
    tune::TunerConfig cfg;
    cfg.cooldown_ticks = 0;
    tune::AdaptiveTuner tuner(cfg, nullptr);
    tune::TunerInputs in = BaseInputs(w10 / 10.0);
    int switches = 0;
    for (int tick = 0; tick < 10; tick++) {
      const tune::TuneDecision d = tuner.Decide(in);
      if (d.retune()) {
        switches++;
        in.current_merge = d.merge;  // The owner installs the design.
        in.current_size_ratio = d.size_ratio;
      }
    }
    EXPECT_LE(switches, 1) << "mix updates=" << w10 / 10.0
                           << " flapped between designs";
  }
}

TEST(TunerNavigator, ClearWinRetunesThenCooldownHolds) {
  tune::TunerConfig cfg;  // Defaults: hysteresis 0.35, cooldown 2.
  tune::AdaptiveTuner tuner(cfg, nullptr);

  // Write-heavy against leveling: tiering's flat write cost wins by far
  // more than the band, so the first decision is a retune.
  tune::TunerInputs in = BaseInputs(0.95);
  tune::TuneDecision d = tuner.Decide(in);
  ASSERT_TRUE(d.retune()) << d.ActionName();
  EXPECT_EQ(d.merge, tuning::HorizontalMerge::kTiering);
  EXPECT_GT(d.predicted_gain, cfg.hysteresis);

  // The owner did NOT install it (inputs unchanged): the cooldown still
  // holds the next two ticks while windows would refill.
  d = tuner.Decide(in);
  EXPECT_EQ(d.action, tune::TuneDecision::Action::kCooldown);
  d = tuner.Decide(in);
  EXPECT_EQ(d.action, tune::TuneDecision::Action::kCooldown);
  d = tuner.Decide(in);
  EXPECT_TRUE(d.retune());

  // Thin windows never navigate, whatever the mix says.
  in.window_ops = 10;
  d = tuner.Decide(in);
  EXPECT_EQ(d.action, tune::TuneDecision::Action::kThinWindow);

  const tune::TunerStats stats = tuner.GetStats();
  EXPECT_EQ(stats.ticks, 5u);
  EXPECT_EQ(stats.retunes, 2u);
  EXPECT_EQ(stats.cooldown_holds, 2u);
  EXPECT_EQ(stats.thin_windows, 1u);
}

TEST(TunerNavigator, TimerPacesTicksAndStopIsIdempotent) {
  std::atomic<int> ticks{0};
  tune::TunerConfig cfg;
  cfg.interval_ms = 2;
  tune::AdaptiveTuner tuner(cfg, [&ticks] { ticks.fetch_add(1); });
  tuner.Start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (ticks.load() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(ticks.load(), 3);
  tuner.Stop();
  tuner.Stop();  // Idempotent.
  const int after = ticks.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(ticks.load(), after);  // No ticks after Stop returns.
}

// ------------------------------------------------------------ Config codec

TEST(PolicyConfigCodec, RoundTripsEveryScheme) {
  const std::vector<GrowthPolicyConfig> configs = {
      GrowthPolicyConfig::VTLevelFull(4),
      GrowthPolicyConfig::VTTierPart(8),
      GrowthPolicyConfig::RocksDBTuned(),
      GrowthPolicyConfig::HRTier(5, 64 << 20),
      GrowthPolicyConfig::LazyLeveling(6, 3, true),
      GrowthPolicyConfig::Universal(),
      GrowthPolicyConfig::Vertiorizon(6, WorkloadMix{0.3, 0.6, 0.1}),
  };
  for (const GrowthPolicyConfig& c : configs) {
    const std::string encoded = EncodeGrowthPolicyConfig(c);
    GrowthPolicyConfig decoded;
    ASSERT_TRUE(DecodeGrowthPolicyConfig(encoded, &decoded)) << encoded;
    // Re-encoding is the equality test the engine itself uses
    // (ApplyPolicyConfig's no-op check): identical text, identical design.
    EXPECT_EQ(EncodeGrowthPolicyConfig(decoded), encoded);
    EXPECT_EQ(decoded.Label(), c.Label());
  }

  GrowthPolicyConfig decoded;
  EXPECT_FALSE(DecodeGrowthPolicyConfig("", &decoded));
  EXPECT_FALSE(DecodeGrowthPolicyConfig("v0 scheme=0", &decoded));
  EXPECT_FALSE(DecodeGrowthPolicyConfig("v1 scheme=99 merge=0", &decoded));
}

// ------------------------------------------------- Live migration path

TEST(PolicySwitch, LiveSwitchUnderConcurrentWritersKeepsScanEquality) {
  // Two engines fed the same deterministic writes (disjoint per-writer key
  // ranges, value derived from key): one switches policy twice mid-write,
  // the other never does. Their final scans must be bit-identical — a
  // policy migration may reshape the tree but never the data.
  auto run = [](bool tuned) {
    auto env = NewMemEnv();
    DbOptions opts = SmallDbOptions(env.get());
    opts.execution_mode = ExecutionMode::kBackground;
    opts.num_background_threads = 2;
    std::unique_ptr<DB> db;
    EXPECT_TRUE(DB::Open(opts, &db).ok());

    constexpr int kWriters = 4;
    constexpr int kKeysPerWriter = 1500;
    std::vector<std::thread> writers;
    std::atomic<bool> failed{false};
    for (int w = 0; w < kWriters; w++) {
      writers.emplace_back([&db, &failed, w] {
        for (int i = 0; i < kKeysPerWriter; i++) {
          const uint64_t key = static_cast<uint64_t>(w) * kKeysPerWriter + i;
          const std::string value =
              "v-" + std::to_string(key) + std::string(40, 'x');
          if (!db->Put(workload::FormatKey(key, 16), value).ok()) {
            failed.store(true);
            return;
          }
        }
      });
    }
    if (tuned) {
      // Interleave two live switches with the writer traffic.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      EXPECT_TRUE(
          db->ApplyPolicyConfig(GrowthPolicyConfig::VTTierFull(6)).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      EXPECT_TRUE(
          db->ApplyPolicyConfig(GrowthPolicyConfig::VTLevelFull(3)).ok());
    }
    for (auto& t : writers) t.join();
    EXPECT_FALSE(failed.load());
    EXPECT_TRUE(db->FlushMemTable().ok());

    std::vector<std::pair<std::string, std::string>> rows;
    EXPECT_TRUE(
        db->Scan(Slice(), kWriters * kKeysPerWriter + 1, &rows).ok());
    if (tuned) {
      std::string events;
      EXPECT_TRUE(db->GetProperty("talus.events", &events));
      EXPECT_NE(events.find("event=policy_change"), std::string::npos);
    }
    return rows;
  };

  const auto tuned = run(true);
  const auto baseline = run(false);
  ASSERT_EQ(tuned.size(), baseline.size());
  ASSERT_EQ(tuned.size(), 4u * 1500u);
  for (size_t i = 0; i < tuned.size(); i++) {
    ASSERT_EQ(tuned[i].first, baseline[i].first) << "row " << i;
    ASSERT_EQ(tuned[i].second, baseline[i].second) << "row " << i;
  }
}

TEST(PolicySwitch, TieredToLeveledCatchUpConvergesLayout) {
  auto env = NewMemEnv();
  DbOptions opts = SmallDbOptions(env.get());
  opts.policy = GrowthPolicyConfig::VTTierFull(4);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());

  // Tiered flushes stack runs: several flush rounds leave multi-run
  // levels that a leveling policy's byte triggers would never touch.
  constexpr int kKeys = 3000;
  for (int round = 0; round < 6; round++) {
    for (int i = round; i < kKeys; i += 6) {
      ASSERT_TRUE(db->Put(workload::FormatKey(i, 16),
                          "r" + std::to_string(round) + "-" +
                              std::to_string(i))
                      .ok());
    }
    ASSERT_TRUE(db->FlushMemTable().ok());
  }
  std::string levels;
  ASSERT_TRUE(db->GetProperty("talus.levels", &levels));
  int multi_run_levels = 0;
  for (int runs : RunsPerLevel(levels)) multi_run_levels += runs > 1;
  ASSERT_GT(multi_run_levels, 0) << levels;  // Precondition: tiered shape.

  std::vector<std::pair<std::string, std::string>> before;
  ASSERT_TRUE(db->Scan(Slice(), kKeys + 1, &before).ok());

  ASSERT_TRUE(db->ApplyPolicyConfig(GrowthPolicyConfig::VTLevelFull(4)).ok());

  // The catch-up pass consolidated every level to at most one run.
  ASSERT_TRUE(db->GetProperty("talus.levels", &levels));
  for (int runs : RunsPerLevel(levels)) EXPECT_LE(runs, 1) << levels;

  std::vector<std::pair<std::string, std::string>> after;
  ASSERT_TRUE(db->Scan(Slice(), kKeys + 1, &after).ok());
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); i++) {
    ASSERT_EQ(before[i], after[i]) << "row " << i;
  }
}

TEST(PolicySwitch, TunedDesignSurvivesReopenViaManifest) {
  auto env = NewMemEnv();
  DbOptions opts = SmallDbOptions(env.get());
  opts.adaptive_tuning = true;
  opts.tune_interval_ms = 0;
  opts.enable_amp_stats = true;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    for (int i = 0; i < 500; i++) {
      ASSERT_TRUE(db->Put(workload::FormatKey(i, 16), "v").ok());
    }
    ASSERT_TRUE(db->FlushMemTable().ok());
    ASSERT_TRUE(
        db->ApplyPolicyConfig(GrowthPolicyConfig::VTTierFull(8)).ok());
    ASSERT_EQ(db->CurrentPolicyConfig().Label(), "VT-Tier-Full");
  }
  // Reopen with the ORIGINAL (leveled) options: under adaptive_tuning the
  // manifest's persisted config is authoritative, so the store comes back
  // tiered at T=8, not reset to the stale static choice.
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    const GrowthPolicyConfig live = db->CurrentPolicyConfig();
    EXPECT_EQ(live.Label(), "VT-Tier-Full");
    EXPECT_DOUBLE_EQ(live.size_ratio, 8.0);
    std::string value;
    ASSERT_TRUE(db->Get(workload::FormatKey(7, 16), &value).ok());
    EXPECT_EQ(value, "v");
  }
}

// --------------------------------------------- Sense→navigate→act loop

TEST(TuneEndToEnd, DriftRetuneAndPolicyChangeReconstructibleFromTrace) {
  const std::string trace_path = "/tmp/talus_tune_trace_" +
                                 std::to_string(::getpid()) + ".jsonl";
  std::remove(trace_path.c_str());
  auto env = NewMemEnv();
  DbOptions opts = SmallDbOptions(env.get());
  opts.enable_amp_stats = true;
  opts.adaptive_tuning = true;
  opts.tune_interval_ms = 0;  // Test-paced: RetuneNow below.
  opts.tune_min_window_ops = 64;
  opts.trace_file_path = trace_path;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  ASSERT_NE(db->adaptive_tuner(), nullptr);

  // Window 1 — read-heavy baseline. Leveling is already the right design,
  // so the tuner holds (this also sets the mix-shift baseline).
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(db->Put(workload::FormatKey(i, 16), "base").ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  db->EvaluateModelDrift();  // Consume the load window unjudged.
  std::string value;
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db->Get(workload::FormatKey(i * 2 % 1000, 16), &value).ok());
  }
  tune::TuneDecision d = db->RetuneNow();
  EXPECT_FALSE(d.retune()) << d.ActionName();

  // Window 2 — the workload flips write-heavy: the drift monitor fires on
  // the mix shift AND the navigator finds tiering beats leveling by more
  // than the band, so the same tick senses, emits, and acts.
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db->Put(workload::FormatKey(i, 16), "flip").ok());
  }
  d = db->RetuneNow();
  ASSERT_TRUE(d.retune()) << d.ActionName();
  EXPECT_EQ(d.merge, tuning::HorizontalMerge::kTiering);
  EXPECT_EQ(db->CurrentPolicyConfig().merge, MergePolicy::kTiering);

  const tune::TunerStats stats = db->adaptive_tuner()->GetStats();
  EXPECT_GE(stats.drift_events, 1u);
  EXPECT_EQ(stats.switches_applied, 1u);
  EXPECT_EQ(stats.last_design, db->CurrentPolicyConfig().Label());

  // The property renders the loop's state...
  std::string prop;
  ASSERT_TRUE(db->GetProperty("talus.tune", &prop));
  EXPECT_NE(prop.find("enabled=1"), std::string::npos) << prop;
  EXPECT_NE(prop.find("switches=1"), std::string::npos) << prop;

  // ...and the whole episode reconstructs from the JSONL trace alone:
  // an amp_sample window, the model_drift verdict, then the
  // policy_change installing the tiered design.
  db.reset();  // Flush the trace.
  std::ifstream trace(trace_path);
  ASSERT_TRUE(trace.is_open());
  std::string line;
  long amp_line = -1, drift_line = -1, change_line = -1, n = 0;
  std::string change_json;
  while (std::getline(trace, line)) {
    if (line.find("\"event\": \"amp_sample\"") != std::string::npos &&
        amp_line < 0) {
      amp_line = n;
    }
    if (line.find("\"event\": \"model_drift\"") != std::string::npos &&
        drift_line < 0) {
      drift_line = n;
    }
    if (line.find("\"event\": \"policy_change\"") != std::string::npos) {
      change_line = n;
      change_json = line;
    }
    n++;
  }
  std::remove(trace_path.c_str());
  ASSERT_GE(amp_line, 0);
  ASSERT_GE(drift_line, 0);
  ASSERT_GE(change_line, 0);
  EXPECT_LT(amp_line, change_line);
  EXPECT_LT(drift_line, change_line);
  // a=1 encodes tiering; b carries the new size ratio in milli-units.
  EXPECT_NE(change_json.find("\"a\": 1"), std::string::npos) << change_json;
}

TEST(TuneSharded, OnlyTheDriftingShardRetunes) {
  auto env = NewMemEnv();
  DbOptions opts = SmallDbOptions(env.get());
  opts.enable_amp_stats = true;
  opts.adaptive_tuning = true;
  opts.tune_interval_ms = 0;  // No fleet timer: TuneNow below.
  opts.tune_min_window_ops = 64;
  opts.shard_count = 2;
  constexpr uint64_t kKeySpace = 2000;
  opts.shard_split_points.push_back(workload::FormatKey(kKeySpace / 2, 16));
  std::unique_ptr<shard::ShardedDB> db;
  ASSERT_TRUE(shard::ShardedDB::Open(opts, &db).ok());
  ASSERT_NE(db->shard(0)->adaptive_tuner(), nullptr);
  ASSERT_NE(db->shard(1)->adaptive_tuner(), nullptr);
  EXPECT_EQ(db->adaptive_tuner(), nullptr);  // interval 0 = no fleet timer.

  // Preload both halves, then consume the write-heavy load window
  // sense-only so it doesn't count against either shard's navigator.
  for (uint64_t k = 0; k < kKeySpace; k++) {
    ASSERT_TRUE(db->Put(workload::FormatKey(k, 16), "seed").ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  db->shard(0)->EvaluateModelDrift();
  db->shard(1)->EvaluateModelDrift();

  // Shard 0 turns write-heavy; shard 1 stays read-heavy (leveling is
  // already its best design). Two rounds so cooldowns can't mask a wrong
  // switch on shard 1.
  std::string value;
  for (int round = 0; round < 2; round++) {
    for (uint64_t i = 0; i < 1500; i++) {
      ASSERT_TRUE(
          db->Put(workload::FormatKey(i % (kKeySpace / 2), 16), "hot").ok());
    }
    for (uint64_t i = 0; i < 1500; i++) {
      const uint64_t k = kKeySpace / 2 + i * 7 % (kKeySpace / 2);
      ASSERT_TRUE(db->Get(workload::FormatKey(k, 16), &value).ok());
    }
    db->TuneNow();
  }

  EXPECT_EQ(db->shard(0)->CurrentPolicyConfig().merge, MergePolicy::kTiering)
      << "write-heavy shard should have switched to tiering";
  EXPECT_EQ(db->shard(1)->CurrentPolicyConfig().merge,
            MergePolicy::kLeveling)
      << "read-heavy shard had no reason to move";
  EXPECT_GE(db->shard(0)->adaptive_tuner()->GetStats().switches_applied, 1u);
  EXPECT_EQ(db->shard(1)->adaptive_tuner()->GetStats().switches_applied, 0u);

  // The per-shard breakdown and the fleet Prometheus families surface it.
  std::string prop;
  ASSERT_TRUE(db->GetProperty("talus.tune", &prop));
  EXPECT_NE(prop.find("-- shard 0 --"), std::string::npos) << prop;
  EXPECT_NE(prop.find("-- shard 1 --"), std::string::npos) << prop;
  const std::string metrics = db->DumpPrometheus();
  EXPECT_NE(metrics.find("talus_tune_switches_total"), std::string::npos);
  EXPECT_NE(metrics.find("talus_tune_ticks_total"), std::string::npos);
}

}  // namespace
}  // namespace talus
