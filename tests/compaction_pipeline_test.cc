// Compaction pipeline tests (DESIGN.md §2.8): planner resolution and
// subcompaction boundary picking, the install conflict rule
// (PlanStillValid) against concurrent-flush reshapes, version splicing
// (ApplyCompactionPlan), subcompaction output-boundary correctness, and
// whole-engine inline-vs-background equivalence with parallel
// subcompactions across growth policies under concurrent writers.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "compaction/compaction_install.h"
#include "compaction/compaction_planner.h"
#include "lsm/db.h"
#include "util/random.h"
#include "workload/generator.h"

namespace talus {
namespace {

// ----------------------------------------------------------- version helpers

FileMetaPtr MakeFile(uint64_t number, const std::string& lo,
                     const std::string& hi, uint64_t size = 1000) {
  auto f = std::make_shared<FileMeta>();
  f->number = number;
  f->file_size = size;
  f->num_entries = 10;
  f->payload_bytes = size;
  f->smallest = InternalKey(Slice(lo), 100, kTypeValue);
  f->largest = InternalKey(Slice(hi), 1, kTypeValue);
  return f;
}

SortedRun MakeRun(uint64_t run_id, std::vector<FileMetaPtr> files) {
  SortedRun run;
  run.run_id = run_id;
  run.files = std::move(files);
  return run;
}

// L0: run 1 (two files), L1: run 2 (two files) — the shape of a simple
// leveling compaction.
Version TwoLevelVersion() {
  Version v;
  v.EnsureLevels(2);
  v.levels[0].runs.push_back(
      MakeRun(1, {MakeFile(10, "c", "h"), MakeFile(11, "k", "p")}));
  v.levels[1].runs.push_back(
      MakeRun(2, {MakeFile(20, "a", "j"), MakeFile(21, "l", "z")}));
  return v;
}

CompactionRequest LevelingRequest() {
  CompactionRequest req;
  req.inputs.push_back({0, 1, {}});
  req.output_level = 1;
  req.output_run_id = 2;
  req.reason = "test-leveling";
  return req;
}

// ------------------------------------------------------------------- planner

TEST(CompactionPlannerTest, ResolvesInputsTargetAndRange) {
  Version v = TwoLevelVersion();
  compaction::PlannerContext ctx;
  ctx.smallest_snapshot = 500;
  compaction::CompactionPlan plan;
  ASSERT_TRUE(
      compaction::PlanCompaction(v, LevelingRequest(), ctx, &plan).ok());

  ASSERT_FALSE(plan.empty());
  ASSERT_EQ(plan.inputs.size(), 1u);
  EXPECT_TRUE(plan.inputs[0].whole_run);
  EXPECT_EQ(plan.inputs[0].files.size(), 2u);
  EXPECT_EQ(plan.min_user, "c");
  EXPECT_EQ(plan.max_user, "p");
  // Both L1 files overlap [c, p].
  ASSERT_TRUE(plan.target_run_id.has_value());
  EXPECT_EQ(plan.target_overlaps.size(), 2u);
  // L1 is the bottommost data: tombstones may go.
  EXPECT_TRUE(plan.drop_tombstones);
  EXPECT_EQ(plan.smallest_snapshot, 500u);
}

TEST(CompactionPlannerTest, UnknownRunIsInvalidArgument) {
  Version v = TwoLevelVersion();
  CompactionRequest req;
  req.inputs.push_back({0, 99, {}});
  req.output_level = 1;
  compaction::CompactionPlan plan;
  EXPECT_TRUE(compaction::PlanCompaction(v, req, compaction::PlannerContext(),
                                         &plan)
                  .IsInvalidArgument());
}

TEST(CompactionPlannerTest, PicksBoundedIncreasingBoundaries) {
  Version v;
  v.EnsureLevels(1);
  std::vector<FileMetaPtr> files;
  const char* keys[] = {"b", "d", "f", "h", "j", "l", "n", "p"};
  for (int i = 0; i < 8; i++) {
    std::string lo = keys[i];
    files.push_back(MakeFile(100 + i, lo, lo + "x", 1000));
  }
  v.levels[0].runs.push_back(MakeRun(1, std::move(files)));

  CompactionRequest req;
  req.inputs.push_back({0, 1, {}});
  req.output_level = 0;
  compaction::PlannerContext ctx;
  ctx.max_subcompactions = 4;
  compaction::CompactionPlan plan;
  ASSERT_TRUE(compaction::PlanCompaction(v, req, ctx, &plan).ok());

  ASSERT_LE(plan.boundaries.size(), 3u);
  ASSERT_GE(plan.boundaries.size(), 1u);
  for (size_t i = 0; i < plan.boundaries.size(); i++) {
    EXPECT_GT(plan.boundaries[i], plan.min_user);
    EXPECT_LE(plan.boundaries[i], plan.max_user);
    if (i > 0) EXPECT_LT(plan.boundaries[i - 1], plan.boundaries[i]);
  }
  // With equal-size files the cuts land on file boundaries, ~evenly.
  EXPECT_EQ(plan.boundaries.size(), 3u);
}

TEST(CompactionPlannerTest, MergesPolicyBoundaryHints) {
  Version v;
  v.EnsureLevels(1);
  v.levels[0].runs.push_back(
      MakeRun(1, {MakeFile(10, "a", "m", 100), MakeFile(11, "n", "z", 100)}));
  CompactionRequest req;
  req.inputs.push_back({0, 1, {}});
  req.output_level = 0;
  req.boundary_hints = {"g", "zzz-out-of-range"};
  compaction::PlannerContext ctx;
  ctx.max_subcompactions = 4;
  compaction::CompactionPlan plan;
  ASSERT_TRUE(compaction::PlanCompaction(v, req, ctx, &plan).ok());
  // The in-range hint is a usable split point; the out-of-range one is not.
  EXPECT_NE(std::find(plan.boundaries.begin(), plan.boundaries.end(), "g"),
            plan.boundaries.end());
  for (const auto& b : plan.boundaries) EXPECT_LE(b, plan.max_user);
}

TEST(CompactionPlannerTest, SingleSubcompactionPicksNoBoundaries) {
  Version v = TwoLevelVersion();
  compaction::PlannerContext ctx;
  ctx.max_subcompactions = 1;
  compaction::CompactionPlan plan;
  ASSERT_TRUE(
      compaction::PlanCompaction(v, LevelingRequest(), ctx, &plan).ok());
  EXPECT_TRUE(plan.boundaries.empty());
}

// ------------------------------------------------- install conflict checking

TEST(CompactionInstallTest, ValidAgainstUnchangedVersion) {
  Version v = TwoLevelVersion();
  compaction::CompactionPlan plan;
  ASSERT_TRUE(compaction::PlanCompaction(v, LevelingRequest(),
                                         compaction::PlannerContext(), &plan)
                  .ok());
  EXPECT_TRUE(compaction::PlanStillValid(plan, v));
  Version copy(v);
  EXPECT_TRUE(compaction::PlanStillValid(plan, copy));
}

TEST(CompactionInstallTest, ConflictsWhenInputRunReshaped) {
  Version v = TwoLevelVersion();
  compaction::CompactionPlan plan;
  ASSERT_TRUE(compaction::PlanCompaction(v, LevelingRequest(),
                                         compaction::PlannerContext(), &plan)
                  .ok());

  // A leveling flush rewrote the input run's file set wholesale.
  Version reshaped(v);
  reshaped.levels[0].runs[0].files = {MakeFile(30, "c", "p")};
  EXPECT_FALSE(compaction::PlanStillValid(plan, reshaped));

  // The input run disappeared entirely (consumed by another compaction).
  Version gone(v);
  gone.levels[0].runs.clear();
  EXPECT_FALSE(compaction::PlanStillValid(plan, gone));

  // A whole-run input also conflicts when files were *added*.
  Version grew(v);
  grew.levels[0].runs[0].files.push_back(MakeFile(31, "q", "r"));
  EXPECT_FALSE(compaction::PlanStillValid(plan, grew));
}

TEST(CompactionInstallTest, ConflictsWhenTargetOverlapsChange) {
  Version v = TwoLevelVersion();
  compaction::CompactionPlan plan;
  ASSERT_TRUE(compaction::PlanCompaction(v, LevelingRequest(),
                                         compaction::PlannerContext(), &plan)
                  .ok());
  // Someone replaced an overlapping target file.
  Version reshaped(v);
  reshaped.levels[1].runs[0].files[0] = MakeFile(40, "a", "j");
  EXPECT_FALSE(compaction::PlanStillValid(plan, reshaped));
}

TEST(CompactionInstallTest, TieringFlushPrependDoesNotConflict) {
  Version v = TwoLevelVersion();
  compaction::CompactionPlan plan;
  ASSERT_TRUE(compaction::PlanCompaction(v, LevelingRequest(),
                                         compaction::PlannerContext(), &plan)
                  .ok());
  // A tiering flush prepended a brand-new run to L0: the plan's input run
  // and target are untouched, so the install may proceed.
  Version flushed(v);
  flushed.levels[0].runs.insert(flushed.levels[0].runs.begin(),
                                MakeRun(9, {MakeFile(50, "a", "z")}));
  EXPECT_TRUE(compaction::PlanStillValid(plan, flushed));
}

TEST(CompactionInstallTest, FrontPlacementIntoL0GuardsRunOrdering) {
  // The flush-merge shape: consume L0's front run, emit a new front run.
  Version v;
  v.EnsureLevels(1);
  v.levels[0].runs.push_back(
      MakeRun(1, {MakeFile(10, "a", "m"), MakeFile(11, "n", "z")}));
  v.levels[0].runs.push_back(MakeRun(2, {MakeFile(12, "a", "z")}));
  CompactionRequest req;
  req.inputs.push_back({0, 1, {}});
  req.output_level = 0;
  req.placement = CompactionRequest::Placement::kFront;
  compaction::CompactionPlan plan;
  ASSERT_TRUE(compaction::PlanCompaction(v, req, compaction::PlannerContext(),
                                         &plan)
                  .ok());
  EXPECT_TRUE(compaction::PlanStillValid(plan, v));

  // A concurrent flush prepended a newer run: inserting this plan's output
  // at the front would misorder newest-first data → conflict.
  Version flushed(v);
  flushed.levels[0].runs.insert(flushed.levels[0].runs.begin(),
                                MakeRun(7, {MakeFile(60, "a", "z")}));
  EXPECT_FALSE(compaction::PlanStillValid(plan, flushed));
}

TEST(CompactionInstallTest, ApplySplicesOutputsAndCollectsObsolete) {
  Version v = TwoLevelVersion();
  compaction::CompactionPlan plan;
  ASSERT_TRUE(compaction::PlanCompaction(v, LevelingRequest(),
                                         compaction::PlannerContext(), &plan)
                  .ok());

  Version next(v);
  uint64_t next_run_id = 3;
  std::vector<FileMetaPtr> obsolete;
  std::vector<FileMetaPtr> outputs = {MakeFile(90, "a", "k"),
                                      MakeFile(91, "l", "z")};
  compaction::ApplyCompactionPlan(plan, outputs, &next_run_id, &next,
                                  &obsolete);

  // Input run consumed, target run rewritten in place with the outputs.
  EXPECT_TRUE(next.levels[0].runs.empty());
  ASSERT_EQ(next.levels[1].runs.size(), 1u);
  EXPECT_EQ(next.levels[1].runs[0].run_id, 2u);  // Target identity kept.
  ASSERT_EQ(next.levels[1].runs[0].files.size(), 2u);
  EXPECT_EQ(next.levels[1].runs[0].files[0]->number, 90u);
  EXPECT_EQ(next.levels[1].runs[0].files[1]->number, 91u);
  // Every consumed file (2 inputs + 2 target overlaps) queued for GC.
  EXPECT_EQ(obsolete.size(), 4u);
  EXPECT_EQ(next_run_id, 3u);  // No new run was created.
}

// --------------------------------------------- engine-level pipeline checks

DbOptions PipelineOptions(Env* env, ExecutionMode mode,
                          const GrowthPolicyConfig& policy,
                          int max_subcompactions) {
  DbOptions opts;
  opts.env = env;
  opts.path = "/db";
  opts.write_buffer_size = 4 << 10;
  opts.target_file_size = 4 << 10;
  opts.block_size = 1024;
  opts.block_cache_bytes = 64 << 10;
  opts.policy = policy;
  opts.execution_mode = mode;
  opts.num_background_threads = 3;
  opts.max_subcompactions = max_subcompactions;
  opts.slowdown_delay_micros = 100;
  return opts;
}

std::vector<std::pair<std::string, std::string>> FullScan(DB* db) {
  std::vector<std::pair<std::string, std::string>> out;
  EXPECT_TRUE(db->Scan(Slice(""), 1000000, &out).ok());
  return out;
}

// Every run in every level must be internally sorted and key-disjoint —
// the invariant point lookups rely on (one file probed per run), and the
// one subcompaction output concatenation could break.
void CheckRunFileInvariants(DB* db) {
  const Version& v = db->current_version();
  for (const auto& level : v.levels) {
    for (const auto& run : level.runs) {
      for (size_t i = 1; i < run.files.size(); i++) {
        EXPECT_LT(run.files[i - 1]->largest.user_key().compare(
                      run.files[i]->smallest.user_key()),
                  0)
            << "overlapping files in run " << run.run_id;
      }
    }
  }
}

TEST(CompactionPipelineDbTest, SubcompactionScanIdenticalAndDisjoint) {
  // The same inline workload under 1 and 4 subcompactions must produce a
  // bit-identical full scan and respect the run-file invariants.
  std::vector<std::vector<std::pair<std::string, std::string>>> scans;
  for (int msc : {1, 4}) {
    auto env = NewMemEnv();
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(PipelineOptions(env.get(), ExecutionMode::kInline,
                                         GrowthPolicyConfig::VTLevelFull(3),
                                         msc),
                         &db)
                    .ok());
    Random rnd(77);
    for (int i = 0; i < 4000; i++) {
      const uint32_t k = rnd.Uniform(900);
      if (rnd.Uniform(10) < 8) {
        ASSERT_TRUE(db->Put(workload::FormatKey(k, 16),
                            "v" + std::to_string(i))
                        .ok());
      } else {
        ASSERT_TRUE(db->Delete(workload::FormatKey(k, 16)).ok());
      }
    }
    ASSERT_TRUE(db->CompactAll().ok());
    CheckRunFileInvariants(db.get());
    scans.push_back(FullScan(db.get()));
    EXPECT_GT(db->stats().compactions, 0u);
  }
  ASSERT_EQ(scans[0].size(), scans[1].size());
  for (size_t i = 0; i < scans[0].size(); i++) {
    EXPECT_EQ(scans[0][i], scans[1][i]);
  }
}

// Deterministic per-thread op stream over a disjoint key range: the final
// per-key state is independent of cross-thread interleaving, so inline and
// background runs must converge to the same database.
void ApplyWorkerOps(DB* db, int worker, int ops) {
  Random rnd(4000 + worker);
  const int base = worker * 1000;
  for (int i = 0; i < ops; i++) {
    std::string key = workload::FormatKey(base + rnd.Uniform(300), 16);
    const uint32_t action = rnd.Uniform(10);
    if (action < 7) {
      ASSERT_TRUE(db->Put(key, "v-" + std::to_string(worker) + "-" +
                                   std::to_string(i))
                      .ok());
    } else if (action < 8) {
      ASSERT_TRUE(db->Delete(key).ok());
    } else if (action < 9) {
      std::string value;
      Status s = db->Get(key, &value);
      ASSERT_TRUE(s.ok() || s.IsNotFound());
    } else {
      std::vector<std::pair<std::string, std::string>> out;
      ASSERT_TRUE(db->Scan(key, 10, &out).ok());
    }
  }
}

struct NamedPolicy {
  const char* name;
  GrowthPolicyConfig config;
};

// Vertical (leveling + tiering), horizontal, and lazy-leveling: every merge
// shape the pipeline executes (new-run, merge-into-run, replace-inputs).
std::vector<NamedPolicy> PipelinePolicies() {
  return {
      {"VT-Level-Full", GrowthPolicyConfig::VTLevelFull(3)},
      {"VT-Tier-Full", GrowthPolicyConfig::VTTierFull(3)},
      {"HR-Level", GrowthPolicyConfig::HRLevel(3)},
      {"Lazy-Level", GrowthPolicyConfig::LazyLeveling(3, 4, false)},
  };
}

class PipelineEquivalenceTest : public ::testing::TestWithParam<NamedPolicy> {
};

TEST_P(PipelineEquivalenceTest, BackgroundMatchesInlineWithSubcompactions) {
  constexpr int kWorkers = 4;
  constexpr int kOpsPerWorker = 1500;

  // Inline reference: same per-worker streams applied sequentially, one
  // subcompaction (the seed-identical configuration).
  auto inline_env = NewMemEnv();
  std::unique_ptr<DB> inline_db;
  ASSERT_TRUE(DB::Open(PipelineOptions(inline_env.get(),
                                       ExecutionMode::kInline,
                                       GetParam().config, 1),
                       &inline_db)
                  .ok());
  for (int w = 0; w < kWorkers; w++) {
    ApplyWorkerOps(inline_db.get(), w, kOpsPerWorker);
  }

  // Background run: concurrent writers, parallel subcompactions.
  auto bg_env = NewMemEnv();
  std::unique_ptr<DB> bg_db;
  ASSERT_TRUE(DB::Open(PipelineOptions(bg_env.get(),
                                       ExecutionMode::kBackground,
                                       GetParam().config, 4),
                       &bg_db)
                  .ok());
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; w++) {
    workers.emplace_back(
        [&bg_db, w] { ApplyWorkerOps(bg_db.get(), w, kOpsPerWorker); });
  }
  for (auto& t : workers) t.join();
  ASSERT_TRUE(bg_db->FlushMemTable().ok());

  auto expect = FullScan(inline_db.get());
  auto got = FullScan(bg_db.get());
  ASSERT_EQ(expect.size(), got.size()) << GetParam().name;
  for (size_t i = 0; i < expect.size(); i++) {
    EXPECT_EQ(expect[i].first, got[i].first) << GetParam().name;
    EXPECT_EQ(expect[i].second, got[i].second) << GetParam().name;
  }
  CheckRunFileInvariants(bg_db.get());

  // The pipeline really ran off the mutex, and conflicts (if any) were
  // retried rather than surfaced as errors.
  std::string stats_str;
  ASSERT_TRUE(bg_db->GetProperty("talus.stats", &stats_str));
  EXPECT_NE(stats_str.find("conflicts="), std::string::npos);
  std::string exec_info;
  ASSERT_TRUE(bg_db->GetProperty("talus.exec", &exec_info));
  EXPECT_NE(exec_info.find("subcompactions{"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Policies, PipelineEquivalenceTest,
                         ::testing::ValuesIn(PipelinePolicies()),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(CompactionPipelineDbTest, CompactAllUnderConcurrentWriters) {
  // Manual compaction while writers keep flushing: the conflict-checked
  // install must retry, never corrupt, and the result must contain every
  // key the writers settled on.
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(PipelineOptions(env.get(), ExecutionMode::kBackground,
                                       GrowthPolicyConfig::VTLevelFull(3), 4),
                       &db)
                  .ok());
  std::thread writer([&db] {
    for (int i = 0; i < 3000; i++) {
      ASSERT_TRUE(
          db->Put(workload::FormatKey(i % 500, 16), std::to_string(i)).ok());
    }
  });
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(db->CompactAll().ok());
  }
  writer.join();
  ASSERT_TRUE(db->CompactAll().ok());
  CheckRunFileInvariants(db.get());
  auto rows = FullScan(db.get());
  EXPECT_EQ(rows.size(), 500u);
  for (size_t i = 0; i < rows.size(); i++) {
    EXPECT_EQ(rows[i].first, workload::FormatKey(i, 16));
  }
}

}  // namespace
}  // namespace talus
