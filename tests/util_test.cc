#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "util/arena.h"
#include "util/random.h"
#include "util/status.h"

namespace talus {
namespace {

TEST(Status, OkIsCheapAndCopyable) {
  Status s = Status::OK();
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  Status copy = s;
  EXPECT_TRUE(copy.ok());
}

TEST(Status, ErrorsCarryCodeAndMessage) {
  Status s = Status::NotFound("missing", "key42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing: key42");

  Status io = Status::IOError("disk gone");
  EXPECT_TRUE(io.IsIOError());
  EXPECT_FALSE(io.IsNotFound());

  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
}

TEST(Status, CopyAndMovePreserveState) {
  Status s = Status::Corruption("bad block", "file 7");
  Status copy = s;
  EXPECT_TRUE(copy.IsCorruption());
  EXPECT_EQ(copy.ToString(), s.ToString());
  Status moved = std::move(copy);
  EXPECT_TRUE(moved.IsCorruption());
}

TEST(Arena, SmallAllocationsPacked) {
  Arena arena;
  std::vector<char*> ptrs;
  for (int i = 1; i <= 100; i++) {
    char* p = arena.Allocate(i);
    ASSERT_NE(p, nullptr);
    memset(p, i, i);  // Must be writable.
    ptrs.push_back(p);
  }
  // Contents intact (no overlap).
  for (int i = 1; i <= 100; i++) {
    for (int j = 0; j < i; j++) {
      EXPECT_EQ(ptrs[i - 1][j], static_cast<char>(i));
    }
  }
  EXPECT_GT(arena.MemoryUsage(), 0u);
}

TEST(Arena, AlignedAllocations) {
  Arena arena;
  for (int i = 0; i < 50; i++) {
    arena.Allocate(1);  // Misalign the bump pointer.
    char* p = arena.AllocateAligned(16);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
  }
}

TEST(Arena, LargeAllocationsGetOwnBlocks) {
  Arena arena;
  const size_t before = arena.MemoryUsage();
  char* big = arena.Allocate(100000);
  memset(big, 7, 100000);
  EXPECT_GE(arena.MemoryUsage(), before + 100000);
}

TEST(Random, DeterministicPerSeed) {
  Random a(42), b(42), c(43);
  bool diverged = false;
  for (int i = 0; i < 100; i++) {
    const uint64_t va = a.Next64();
    EXPECT_EQ(va, b.Next64());
    if (va != c.Next64()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Random, UniformInRange) {
  Random rnd(7);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rnd.Uniform(17), 17u);
  }
}

TEST(Random, UniformCoversRange) {
  Random rnd(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; i++) {
    seen.insert(rnd.Uniform(10));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Random, NextDoubleInUnitInterval) {
  Random rnd(11);
  double min = 1, max = 0;
  for (int i = 0; i < 10000; i++) {
    const double d = rnd.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    min = std::min(min, d);
    max = std::max(max, d);
  }
  EXPECT_LT(min, 0.05);
  EXPECT_GT(max, 0.95);
}

TEST(Random, OneInRoughlyCalibrated) {
  Random rnd(13);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; i++) {
    if (rnd.OneIn(10)) hits++;
  }
  EXPECT_NEAR(hits / static_cast<double>(trials), 0.1, 0.01);
}

TEST(Hash32, StableAndSpread) {
  const uint32_t h1 = Hash32("hello", 5, 1);
  EXPECT_EQ(h1, Hash32("hello", 5, 1));
  EXPECT_NE(h1, Hash32("hello", 5, 2));  // Seed matters.
  EXPECT_NE(h1, Hash32("hellp", 5, 1));  // Content matters.
  // Empty input is fine.
  (void)Hash32("", 0, 1);
}

TEST(FnvHash64, PermutesDistinctInputs) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; i++) {
    outputs.insert(FnvHash64(i));
  }
  EXPECT_EQ(outputs.size(), 10000u);  // No collisions in a small range.
}

}  // namespace
}  // namespace talus
