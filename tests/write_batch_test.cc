#include "lsm/write_batch.h"

#include <gtest/gtest.h>

#include <vector>

#include "env/env.h"
#include "lsm/db.h"
#include "workload/generator.h"

namespace talus {
namespace {

struct CollectingHandler : public WriteBatch::Handler {
  void Put(const Slice& key, const Slice& value) override {
    ops.emplace_back("put:" + key.ToString() + "=" + value.ToString());
  }
  void Delete(const Slice& key) override {
    ops.emplace_back("del:" + key.ToString());
  }
  std::vector<std::string> ops;
};

TEST(WriteBatch, IterateInOrder) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Delete("b");
  batch.Put("c", "3");
  EXPECT_EQ(batch.Count(), 3u);
  EXPECT_EQ(batch.PayloadBytes(), 2u + 1u + 2u);

  CollectingHandler handler;
  ASSERT_TRUE(batch.Iterate(&handler).ok());
  ASSERT_EQ(handler.ops.size(), 3u);
  EXPECT_EQ(handler.ops[0], "put:a=1");
  EXPECT_EQ(handler.ops[1], "del:b");
  EXPECT_EQ(handler.ops[2], "put:c=3");
}

TEST(WriteBatch, ClearResets) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.Count(), 0u);
  EXPECT_EQ(batch.PayloadBytes(), 0u);
}

TEST(WriteBatch, RepRoundTrip) {
  WriteBatch batch;
  batch.Put("key1", std::string(1000, 'x'));
  batch.Delete("key2");
  batch.Put("", "");  // Empty key allowed at batch level; DB rejects later.

  WriteBatch decoded;
  ASSERT_TRUE(WriteBatch::FromRep(batch.rep(), &decoded).ok());
  EXPECT_EQ(decoded.Count(), 3u);
  EXPECT_EQ(decoded.rep(), batch.rep());
}

TEST(WriteBatch, CorruptRepRejected) {
  WriteBatch decoded;
  EXPECT_FALSE(WriteBatch::FromRep(Slice("\x07garbage"), &decoded).ok());
  std::string bad;
  bad.push_back(static_cast<char>(kTypeValue));
  bad.push_back(static_cast<char>(200));  // Length prefix beyond input.
  EXPECT_FALSE(WriteBatch::FromRep(Slice(bad), &decoded).ok());
}

TEST(WriteBatchDb, AtomicApply) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/wb";
  opts.write_buffer_size = 8 << 10;
  opts.policy = GrowthPolicyConfig::VTLevelPart(3);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());

  WriteBatch batch;
  for (int i = 0; i < 100; i++) {
    batch.Put(workload::FormatKey(i, 16), "batch-" + std::to_string(i));
  }
  batch.Delete(workload::FormatKey(50, 16));
  ASSERT_TRUE(db->Write(batch).ok());

  std::string value;
  ASSERT_TRUE(db->Get(workload::FormatKey(7, 16), &value).ok());
  EXPECT_EQ(value, "batch-7");
  EXPECT_TRUE(db->Get(workload::FormatKey(50, 16), &value).IsNotFound());
}

TEST(WriteBatchDb, BatchSurvivesReopen) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/wb2";
  opts.write_buffer_size = 1 << 20;  // Large: batch stays in WAL only.
  opts.policy = GrowthPolicyConfig::VTLevelPart(3);
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(opts, &db).ok());
    WriteBatch batch;
    batch.Put("alpha", "1");
    batch.Put("beta", "2");
    batch.Delete("alpha");
    ASSERT_TRUE(db->Write(batch).ok());
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  std::string value;
  EXPECT_TRUE(db->Get("alpha", &value).IsNotFound());
  ASSERT_TRUE(db->Get("beta", &value).ok());
  EXPECT_EQ(value, "2");
}

TEST(WriteBatchDb, EmptyBatchIsNoop) {
  auto env = NewMemEnv();
  DbOptions opts;
  opts.env = env.get();
  opts.path = "/wb3";
  opts.policy = GrowthPolicyConfig::VTLevelPart(3);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(opts, &db).ok());
  WriteBatch batch;
  EXPECT_TRUE(db->Write(batch).ok());
  EXPECT_EQ(db->stats().puts, 0u);
}

}  // namespace
}  // namespace talus
