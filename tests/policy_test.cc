// Structural tests for the growth policies: the tree shapes each policy
// produces in the live engine must match the scheme definitions — and for
// the horizontal schemes, the compaction *counts* must match the abstract
// counter simulators from theory/schemes.h.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "env/env.h"
#include "lsm/db.h"
#include "policy/vertiorizon_policy.h"
#include "theory/binomial.h"
#include "theory/schemes.h"
#include "workload/generator.h"

namespace talus {
namespace {

constexpr uint64_t kEntryPayload = 16 + 240;  // key + value bytes.

DbOptions Options(Env* env, const GrowthPolicyConfig& policy,
                  uint64_t buffer = 4 << 10) {
  DbOptions opts;
  opts.env = env;
  opts.path = "/p";
  opts.write_buffer_size = buffer;
  opts.target_file_size = buffer;
  opts.block_size = 1024;
  opts.policy = policy;
  return opts;
}

// Writes n distinct keys of ~256B payload (so ~16 entries per 4KB flush).
void Fill(DB* db, int n, int seed = 3) {
  Random rnd(seed);
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(db->Put(workload::FormatKey(rnd.Uniform(1 << 30), 16),
                        std::string(240, 'v'))
                    .ok());
  }
}

TEST(VerticalLevelingStructure, OneRunPerLevelAndCapacitiesHold) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(Options(env.get(), GrowthPolicyConfig::VTLevelPart(3)), &db)
          .ok());
  Fill(db.get(), 4000);
  const Version& v = db->current_version();
  for (size_t i = 0; i < v.levels.size(); i++) {
    EXPECT_LE(v.levels[i].NumRuns(), 1u) << "level " << i;
  }
  // Every level except the last respects its capacity (with one-flush slack).
  const int last = v.BottommostNonEmptyLevel();
  for (int i = 0; i < last; i++) {
    const uint64_t cap = (4 << 10) * static_cast<uint64_t>(std::pow(3.0, i + 1));
    EXPECT_LE(v.levels[i].TotalBytes(), cap + (8 << 10)) << "level " << i;
  }
}

TEST(VerticalTieringStructure, RunCountsBounded) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(Options(env.get(), GrowthPolicyConfig::VTTierFull(3)), &db)
          .ok());
  Fill(db.get(), 4000);
  const Version& v = db->current_version();
  for (size_t i = 0; i + 1 < v.levels.size(); i++) {
    EXPECT_LE(v.levels[i].NumRuns(), 3u) << "level " << i;
  }
}

TEST(VerticalStructure, FilesRespectTargetSize) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(Options(env.get(), GrowthPolicyConfig::VTLevelPart(3)), &db)
          .ok());
  Fill(db.get(), 3000);
  for (const auto& level : db->current_version().levels) {
    for (const auto& run : level.runs) {
      for (const auto& f : run.files) {
        EXPECT_LE(f->file_size, (4u << 10) + (2u << 10));
      }
    }
  }
}

TEST(VerticalStructure, RunsAreKeyDisjointAndSorted) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(Options(env.get(), GrowthPolicyConfig::VTLevelPart(3)), &db)
          .ok());
  Fill(db.get(), 4000);
  for (const auto& level : db->current_version().levels) {
    for (const auto& run : level.runs) {
      for (size_t i = 1; i < run.files.size(); i++) {
        EXPECT_LT(run.files[i - 1]->largest.user_key().compare(
                      run.files[i]->smallest.user_key()),
                  0);
      }
    }
  }
}

TEST(HorizontalLevelingStructure, LevelCountFixedAndCompactionsMatchTheory) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(Options(env.get(), GrowthPolicyConfig::HRLevel(3)), &db).ok());
  Fill(db.get(), 5000);
  const Version& v = db->current_version();
  // Exactly ℓ levels in use, single (leveled) run each.
  int deepest = v.BottommostNonEmptyLevel();
  EXPECT_LT(deepest, 3);
  for (const auto& level : v.levels) {
    EXPECT_LE(level.NumRuns(), 1u);
  }
  // The engine's compaction count matches Algorithm 1's cascade count.
  const uint64_t flushes = db->stats().flushes;
  const auto sim = theory::SimulateHorizontalLeveling(flushes, 3);
  EXPECT_EQ(db->stats().compactions, sim.events.size());
}

TEST(HorizontalTieringStructure, CompactionsMatchAlgorithm2) {
  auto env = NewMemEnv();
  const uint64_t data_size = 5000 * kEntryPayload;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(Options(env.get(), GrowthPolicyConfig::HRTier(3, data_size)),
               &db)
          .ok());
  Fill(db.get(), 5000);
  const Version& v = db->current_version();
  EXPECT_LT(v.BottommostNonEmptyLevel(), 3);

  const uint64_t flushes = db->stats().flushes;
  const uint64_t n = (data_size + (4 << 10) - 1) / (4 << 10);
  const uint64_t k = theory::FindK(std::max<uint64_t>(2, n), 3);
  const auto sim = theory::SimulateHorizontalTiering(flushes, 3, k);
  EXPECT_EQ(db->stats().compactions, sim.events.size());
  // Run counts per level match the simulator's final state.
  for (int lvl = 0; lvl < 3; lvl++) {
    EXPECT_EQ(v.levels[lvl].NumRuns(), sim.final_runs_per_level[lvl])
        << "level " << lvl;
  }
}

TEST(UniversalStructure, SingleLevelRunCountBounded) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(Options(env.get(), GrowthPolicyConfig::Universal()), &db)
          .ok());
  Fill(db.get(), 5000);
  const Version& v = db->current_version();
  EXPECT_EQ(v.BottommostNonEmptyLevel(), 0);
  // After the op stream quiesces, the run count sits under the trigger.
  EXPECT_LE(v.levels[0].NumRuns(), 4u);
}

TEST(VertiorizonStructure, LayoutAndResizing) {
  auto env = NewMemEnv();
  auto config = GrowthPolicyConfig::VRNTier(3.0);
  config.vrn_initial_capacity_buffers = 4;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Options(env.get(), config), &db).ok());
  Fill(db.get(), 12000);

  auto* policy = dynamic_cast<VertiorizonPolicy*>(db->policy());
  ASSERT_NE(policy, nullptr);
  const Version& v = db->current_version();

  // The two vertical levels are pinned; V1 and V2 hold single runs.
  EXPECT_LE(v.levels[policy->v1_level()].NumRuns(), 1u);
  EXPECT_LE(v.levels[policy->v2_level()].NumRuns(), 1u);
  // Horizontal part stays within its configured level range.
  for (int i = policy->horizontal_levels();
       i < VertiorizonPolicy::kMaxHorizontalLevels; i++) {
    EXPECT_TRUE(v.levels[i].empty()) << "unused horizontal level " << i;
  }
  // 12000 × 256B ≈ 3MB through a 16KB horizontal part: capacity must have
  // grown via the 1+1/T resizing rule.
  EXPECT_GT(policy->capacity_buffers(), 4u);
  // V2 (the big level) holds most of the data.
  EXPECT_GT(v.levels[policy->v2_level()].TotalBytes(),
            v.TotalBytes() / 2);
}

TEST(VertiorizonStructure, SelfTuningPicksTieringForWrites) {
  auto env = NewMemEnv();
  WorkloadMix mix;
  mix.updates = 0.95;
  mix.point_lookups = 0.05;
  auto config = GrowthPolicyConfig::Vertiorizon(6.0, mix);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Options(env.get(), config), &db).ok());
  auto* policy = dynamic_cast<VertiorizonPolicy*>(db->policy());
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->horizontal_merge(), MergePolicy::kTiering);
}

TEST(LazyLevelingStructure, LastLevelLeveledUpperTiered) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(
      DB::Open(Options(env.get(), GrowthPolicyConfig::LazyLeveling(3, 4)),
               &db)
          .ok());
  Fill(db.get(), 8000);
  const Version& v = db->current_version();
  ASSERT_GE(v.levels.size(), 4u);
  EXPECT_LE(v.levels[3].NumRuns(), 1u);  // Largest level: leveled.
  for (int i = 0; i < 3; i++) {
    EXPECT_LE(v.levels[i].NumRuns(), 3u) << "tiering level " << i;
  }
}

TEST(LazyLevelingStructure, EmbeddedKeepsLastLevelLeveled) {
  auto env = NewMemEnv();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Options(env.get(),
                               GrowthPolicyConfig::LazyLeveling(3, 4, true)),
                       &db)
                  .ok());
  Fill(db.get(), 8000);
  const Version& v = db->current_version();
  ASSERT_GE(v.levels.size(), 4u);
  EXPECT_LE(v.levels[3].NumRuns(), 1u);
}

TEST(PolicyState, SurvivesReopenForCounterSchemes) {
  auto env = NewMemEnv();
  const auto config = GrowthPolicyConfig::HRTier(3, 1 << 22);
  uint64_t flushes1, compactions1;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(Options(env.get(), config), &db).ok());
    Fill(db.get(), 3000);
    flushes1 = db->stats().flushes;
    compactions1 = db->stats().compactions;
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Options(env.get(), config), &db).ok());
  Fill(db.get(), 3000, /*seed=*/4);
  const uint64_t flushes2 = db->stats().flushes;
  const uint64_t compactions2 = db->stats().compactions;

  // Counters restored from the manifest: the compaction total across both
  // sessions must equal one continuous Algorithm 2 run over all flushes.
  const uint64_t n = ((1 << 22) + (4 << 10) - 1) / (4 << 10);
  const uint64_t k = theory::FindK(n, 3);
  const auto sim =
      theory::SimulateHorizontalTiering(flushes1 + flushes2, 3, k);
  EXPECT_EQ(compactions1 + compactions2, sim.events.size());
}

}  // namespace
}  // namespace talus
